//! Online register assignment: the cheap half of split register allocation.
//!
//! The offline compiler already decided *which values deserve registers*
//! (the portable [`SpillOrder`](splitc_vbc::SpillOrder) annotation). This
//! module performs the target-specific *assignment*: values that live across
//! basic blocks ("globals") either get a dedicated physical register or a
//! dedicated stack slot, and block-local temporaries are handled by a small
//! scratch allocator with eviction. Three modes reproduce the comparison of
//! the paper's Section 4:
//!
//! * [`RegAllocMode::SplitAnnotations`] — linear-time online assignment driven
//!   by the offline ranking (the split approach);
//! * [`RegAllocMode::OnlineGreedy`] — what a fast JIT does without hints:
//!   first-come-first-served assignment, no ranking analysis;
//! * [`RegAllocMode::OnlineAnalyze`] — the JIT recomputes the ranking itself,
//!   matching the split code quality but paying the analysis cost online.

use crate::compile::{JitError, JitStats};
use crate::lowering::VirtualFunc;
use crate::mir;
use splitc_targets::{MBlock, MFunction, MInst, PReg, RegClass, TargetDesc};
use splitc_vbc::Function;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How the online compiler decides which values keep registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegAllocMode {
    /// Use the offline spill-order annotation (split register allocation).
    #[default]
    SplitAnnotations,
    /// No analysis at all: rank values by first appearance.
    OnlineGreedy,
    /// Recompute the ranking online (slow JIT, good code).
    OnlineAnalyze,
}

/// Number of physical registers reserved per class as scratch for the
/// block-local allocator and for reloads of spilled values.
const SCRATCH_REGS: u16 = 2;

fn class_index(c: RegClass) -> usize {
    match c {
        RegClass::Int => 0,
        RegClass::Float => 1,
        RegClass::Vec => 2,
    }
}

fn class_limit(target: &TargetDesc, c: RegClass) -> u16 {
    match c {
        RegClass::Int => target.int_regs,
        RegClass::Float => target.float_regs,
        RegClass::Vec => target.vector.map(|v| v.regs).unwrap_or(0),
    }
}

/// Block-level liveness over virtual machine registers.
fn machine_liveness(vf: &VirtualFunc) -> (Vec<BTreeSet<PReg>>, Vec<BTreeSet<PReg>>) {
    let n = vf.blocks.len();
    let mut use_set = vec![BTreeSet::new(); n];
    let mut def_set = vec![BTreeSet::new(); n];
    for (b, insts) in vf.blocks.iter().enumerate() {
        for inst in insts {
            for u in mir::uses(inst) {
                if !def_set[b].contains(&u) {
                    use_set[b].insert(u);
                }
            }
            if let Some(d) = mir::def(inst) {
                def_set[b].insert(d);
            }
        }
    }
    let succs: Vec<Vec<u32>> = vf
        .blocks
        .iter()
        .map(|insts| insts.last().map(mir::successors).unwrap_or_default())
        .collect();
    let mut live_in = vec![BTreeSet::new(); n];
    let mut live_out = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = BTreeSet::new();
            for s in &succs[b] {
                out.extend(live_in[*s as usize].iter().copied());
            }
            let mut inn = use_set[b].clone();
            for r in &out {
                if !def_set[b].contains(r) {
                    inn.insert(*r);
                }
            }
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    (live_in, live_out)
}

/// Rank the global (cross-block) virtual registers from most to least worth
/// keeping in a physical register.
fn rank_globals(
    vf: &VirtualFunc,
    vbc_func: &Function,
    globals: &BTreeSet<PReg>,
    mode: RegAllocMode,
    stats: &mut JitStats,
) -> Vec<PReg> {
    // Parameters always come first: every mode keeps them if at all possible.
    let mut ranked: Vec<PReg> = Vec::new();
    for p in &vf.params {
        if globals.contains(p) && !ranked.contains(p) {
            ranked.push(*p);
        }
    }

    let first_appearance: Vec<PReg> = {
        let mut seen = BTreeSet::new();
        let mut order = Vec::new();
        for insts in &vf.blocks {
            for inst in insts {
                for r in mir::def(inst).into_iter().chain(mir::uses(inst)) {
                    if globals.contains(&r) && seen.insert(r) {
                        order.push(r);
                    }
                }
            }
        }
        order
    };

    match mode {
        RegAllocMode::SplitAnnotations => {
            // Translate the portable bytecode ranking to machine registers.
            if let Some(order) = vbc_func.annotations.spill_order() {
                stats.annotations_used = true;
                stats.regalloc_work += order.keep_order.len() as u64;
                for vreg in &order.keep_order {
                    if let Some(p) = vf.vbc_map.get(&splitc_vbc::VReg(*vreg)) {
                        if globals.contains(p) && !ranked.contains(p) {
                            ranked.push(*p);
                        }
                    }
                }
            }
            // Machine registers the offline step never saw (e.g. scalarization
            // lanes) are appended in appearance order.
            for r in first_appearance {
                if !ranked.contains(&r) {
                    ranked.push(r);
                }
            }
        }
        RegAllocMode::OnlineGreedy => {
            stats.regalloc_work += globals.len() as u64;
            for r in first_appearance {
                if !ranked.contains(&r) {
                    ranked.push(r);
                }
            }
        }
        RegAllocMode::OnlineAnalyze => {
            // Recompute use counts and spans online — the work the split
            // approach avoids.
            let mut accesses: HashMap<PReg, u64> = HashMap::new();
            let mut blocks_seen: HashMap<PReg, BTreeSet<usize>> = HashMap::new();
            for (b, insts) in vf.blocks.iter().enumerate() {
                for inst in insts {
                    stats.regalloc_work += 1;
                    for r in mir::def(inst).into_iter().chain(mir::uses(inst)) {
                        if globals.contains(&r) {
                            *accesses.entry(r).or_default() += 1;
                            blocks_seen.entry(r).or_default().insert(b);
                        }
                    }
                }
            }
            let mut scored: Vec<(PReg, f64)> = globals
                .iter()
                .map(|r| {
                    let a = accesses.get(r).copied().unwrap_or(0) as f64;
                    let span = blocks_seen.get(r).map(|s| s.len()).unwrap_or(1).max(1) as f64;
                    (*r, a / span)
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for (r, _) in scored {
                if !ranked.contains(&r) {
                    ranked.push(r);
                }
            }
        }
    }
    ranked
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Reg(u16),
    Slot(u32),
}

struct Assigner<'a> {
    target: &'a TargetDesc,
    /// Physical register (by class) for globals that keep a register.
    kept: HashMap<PReg, u16>,
    /// Stack slot for globals that do not.
    spilled: HashMap<PReg, u32>,
    /// Number of physical registers handed to kept globals, per class.
    kept_count: [u16; 3],
    next_slot: u32,
}

impl Assigner<'_> {
    /// Physical registers available to block-local values and reloads: every
    /// register of the class that was not handed to a kept global.
    fn scratch_pool(&self, class: RegClass) -> Vec<u16> {
        let limit = class_limit(self.target, class);
        (self.kept_count[class_index(class)]..limit).collect()
    }
}

/// Assign physical registers and stack slots, producing final machine code.
pub(crate) fn assign(
    vf: &VirtualFunc,
    vbc_func: &Function,
    target: &TargetDesc,
    mode: RegAllocMode,
    stats: &mut JitStats,
) -> Result<MFunction, JitError> {
    let (live_in, live_out) = machine_liveness(vf);
    stats.regalloc_work += vf.emitted;

    // Globals: everything live across a block boundary.
    let mut globals: BTreeSet<PReg> = BTreeSet::new();
    for set in live_in.iter().chain(live_out.iter()) {
        globals.extend(set.iter().copied());
    }
    for p in &vf.params {
        globals.insert(*p);
    }

    let ranked = rank_globals(vf, vbc_func, &globals, mode, stats);

    let mut assigner = Assigner {
        target,
        kept: HashMap::new(),
        spilled: HashMap::new(),
        kept_count: [0, 0, 0],
        next_slot: 0,
    };

    // Hand out the non-scratch registers of each class in ranking order.
    let mut next_phys: [u16; 3] = [0, 0, 0];
    for r in &ranked {
        let limit = class_limit(target, r.class);
        if limit < SCRATCH_REGS {
            return Err(JitError::RegisterPressure {
                function: vf.name.clone(),
                detail: format!(
                    "target {} has no {} registers",
                    target.name,
                    class_name(r.class)
                ),
            });
        }
        let keepable = limit - SCRATCH_REGS;
        let idx = &mut next_phys[class_index(r.class)];
        if *idx < keepable {
            assigner.kept.insert(*r, *idx);
            *idx += 1;
        } else {
            assigner.spilled.insert(*r, assigner.next_slot);
            assigner.next_slot += 1;
        }
    }
    assigner.kept_count = next_phys;

    // Parameters must end up in registers: the simulator's calling convention
    // delivers arguments to registers, not to stack slots.
    let mut params = Vec::with_capacity(vf.params.len());
    let mut prologue: Vec<MInst> = Vec::new();
    for p in &vf.params {
        if let Some(phys) = assigner.kept.get(p) {
            params.push(PReg {
                class: p.class,
                index: *phys,
            });
        } else if let Some(slot) = assigner.spilled.get(p) {
            // Deliver into a scratch register, then spill in the prologue.
            let pool = assigner.scratch_pool(p.class);
            let deliver = PReg {
                class: p.class,
                index: pool[params.len() % pool.len()],
            };
            params.push(deliver);
            prologue.push(MInst::Spill {
                slot: *slot,
                src: deliver,
            });
        } else {
            // A parameter that is never used: deliver it to scratch 0 and drop it.
            let pool = assigner.scratch_pool(p.class);
            params.push(PReg {
                class: p.class,
                index: pool[0],
            });
        }
    }
    // More than one spilled parameter of a class would share delivery
    // registers; reject that corner case explicitly rather than miscompile.
    {
        let mut delivered: Vec<PReg> = Vec::new();
        for (p, d) in vf.params.iter().zip(&params) {
            if assigner.kept.contains_key(p) {
                continue;
            }
            if delivered.contains(d) && assigner.spilled.contains_key(p) {
                return Err(JitError::RegisterPressure {
                    function: vf.name.clone(),
                    detail: "too many parameters for the register file".into(),
                });
            }
            delivered.push(*d);
        }
    }

    // Rewrite every block.
    let mut blocks = Vec::with_capacity(vf.blocks.len());
    for (bi, insts) in vf.blocks.iter().enumerate() {
        let mut out: Vec<MInst> = if bi == 0 {
            prologue.clone()
        } else {
            Vec::new()
        };
        rewrite_block(insts, &mut assigner, &mut out, &vf.name)?;
        blocks.push(MBlock { insts: out });
        let _ = (&live_in, &live_out, bi);
    }

    let mfunc = MFunction {
        name: vf.name.clone(),
        params,
        blocks,
        num_slots: assigner.next_slot,
    };
    stats.static_spills += mfunc
        .blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .filter(|i| matches!(i, MInst::Spill { .. }))
        .count() as u64;
    stats.static_reloads += mfunc
        .blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .filter(|i| matches!(i, MInst::Reload { .. }))
        .count() as u64;
    Ok(mfunc)
}

fn class_name(c: RegClass) -> &'static str {
    match c {
        RegClass::Int => "integer",
        RegClass::Float => "floating-point",
        RegClass::Vec => "vector",
    }
}

fn rewrite_block(
    insts: &[MInst],
    assigner: &mut Assigner<'_>,
    out: &mut Vec<MInst>,
    fname: &str,
) -> Result<(), JitError> {
    // Next-use positions of block-local virtual registers.
    let mut positions: HashMap<PReg, Vec<usize>> = HashMap::new();
    for (i, inst) in insts.iter().enumerate() {
        for r in mir::uses(inst) {
            positions.entry(r).or_default().push(i);
        }
    }

    // Per-class scratch state: free physical indices and current residents.
    let mut free: [Vec<u16>; 3] = [
        assigner.scratch_pool(RegClass::Int),
        assigner.scratch_pool(RegClass::Float),
        assigner.scratch_pool(RegClass::Vec),
    ];
    // Pop from the low end first so allocation order is deterministic.
    for pool in &mut free {
        pool.reverse();
    }
    // Location of block-local temporaries.
    let mut local_loc: HashMap<PReg, Loc> = HashMap::new();
    // Which local currently occupies each scratch register (ordered for
    // deterministic eviction decisions).
    let mut occupant: BTreeMap<(RegClass, u16), PReg> = BTreeMap::new();

    let pressure_error = |fname: &str, class: RegClass| JitError::RegisterPressure {
        function: fname.to_owned(),
        detail: format!("not enough {} scratch registers", class_name(class)),
    };

    for (idx, inst) in insts.iter().enumerate() {
        let mut inst = inst.clone();
        let mut pinned: Vec<(RegClass, u16)> = Vec::new();
        let mut temp: Vec<(RegClass, u16)> = Vec::new();

        // --- Resolve uses. ---
        let use_regs = mir::uses(&inst);
        let mut use_map: HashMap<PReg, PReg> = HashMap::new();
        for u in &use_regs {
            if use_map.contains_key(u) {
                continue;
            }
            let phys = if let Some(k) = assigner.kept.get(u) {
                PReg {
                    class: u.class,
                    index: *k,
                }
            } else if let Some(slot) = assigner.spilled.get(u).copied() {
                let s = alloc_scratch(
                    u.class,
                    idx,
                    &mut free,
                    &mut occupant,
                    &mut local_loc,
                    &positions,
                    &pinned,
                    assigner,
                    out,
                )
                .ok_or_else(|| pressure_error(fname, u.class))?;
                out.push(MInst::Reload {
                    slot,
                    dst: PReg {
                        class: u.class,
                        index: s,
                    },
                });
                temp.push((u.class, s));
                pinned.push((u.class, s));
                PReg {
                    class: u.class,
                    index: s,
                }
            } else {
                match local_loc.get(u).copied() {
                    Some(Loc::Reg(s)) => {
                        pinned.push((u.class, s));
                        PReg {
                            class: u.class,
                            index: s,
                        }
                    }
                    Some(Loc::Slot(slot)) => {
                        let s = alloc_scratch(
                            u.class,
                            idx,
                            &mut free,
                            &mut occupant,
                            &mut local_loc,
                            &positions,
                            &pinned,
                            assigner,
                            out,
                        )
                        .ok_or_else(|| pressure_error(fname, u.class))?;
                        out.push(MInst::Reload {
                            slot,
                            dst: PReg {
                                class: u.class,
                                index: s,
                            },
                        });
                        local_loc.insert(*u, Loc::Reg(s));
                        occupant.insert((u.class, s), *u);
                        pinned.push((u.class, s));
                        PReg {
                            class: u.class,
                            index: s,
                        }
                    }
                    None => {
                        return Err(JitError::Internal(format!(
                            "virtual register {u} used before definition in {fname} (instruction {idx}: {inst:?})"
                        )));
                    }
                }
            };
            use_map.insert(*u, phys);
        }
        mir::rewrite_uses(&mut inst, |r| use_map.get(&r).copied().unwrap_or(r));

        // Free scratch copies of spilled globals (their value has been read)
        // and locals whose last use is this instruction.
        for (class, s) in temp {
            free[class_index(class)].push(s);
        }
        let dying: Vec<PReg> = use_regs
            .iter()
            .copied()
            .filter(|u| {
                local_loc.contains_key(u)
                    && positions
                        .get(u)
                        .map(|p| p.iter().all(|x| *x <= idx))
                        .unwrap_or(true)
            })
            .collect();
        for u in dying {
            if let Some(Loc::Reg(s)) = local_loc.get(&u).copied() {
                free[class_index(u.class)].push(s);
                occupant.remove(&(u.class, s));
            }
            local_loc.remove(&u);
        }

        // --- Resolve the definition. ---
        let mut post_spill: Option<MInst> = None;
        if let Some(d) = mir::def(&inst) {
            let phys = if let Some(k) = assigner.kept.get(&d) {
                PReg {
                    class: d.class,
                    index: *k,
                }
            } else if let Some(slot) = assigner.spilled.get(&d).copied() {
                let s = alloc_scratch(
                    d.class,
                    idx,
                    &mut free,
                    &mut occupant,
                    &mut local_loc,
                    &positions,
                    &pinned,
                    assigner,
                    out,
                )
                .ok_or_else(|| pressure_error(fname, d.class))?;
                post_spill = Some(MInst::Spill {
                    slot,
                    src: PReg {
                        class: d.class,
                        index: s,
                    },
                });
                free[class_index(d.class)].push(s);
                PReg {
                    class: d.class,
                    index: s,
                }
            } else {
                // Block-local temporary.
                match local_loc.get(&d).copied() {
                    Some(Loc::Reg(s)) => PReg {
                        class: d.class,
                        index: s,
                    },
                    _ => {
                        let s = alloc_scratch(
                            d.class,
                            idx,
                            &mut free,
                            &mut occupant,
                            &mut local_loc,
                            &positions,
                            &pinned,
                            assigner,
                            out,
                        )
                        .ok_or_else(|| pressure_error(fname, d.class))?;
                        local_loc.insert(d, Loc::Reg(s));
                        occupant.insert((d.class, s), d);
                        PReg {
                            class: d.class,
                            index: s,
                        }
                    }
                }
            };
            mir::rewrite_def(&mut inst, |_| phys);
        }

        // Drop trivial moves that the assignment made redundant.
        let redundant = matches!(&inst, MInst::Mov { dst, src } if dst == src);
        if !redundant {
            out.push(inst);
        }
        if let Some(spill) = post_spill {
            out.push(spill);
        }

        // Defensive: locals defined but never used can release their register
        // immediately.
        if let Some(d) = insts.get(idx).and_then(mir::def) {
            if local_loc.contains_key(&d) && !positions.contains_key(&d) {
                if let Some(Loc::Reg(s)) = local_loc.get(&d).copied() {
                    free[class_index(d.class)].push(s);
                    occupant.remove(&(d.class, s));
                }
                local_loc.remove(&d);
            }
        }
    }
    Ok(())
}

/// Allocate one scratch register of `class`, evicting the block-local value
/// with the farthest next use if necessary. Returns `None` when every scratch
/// register is pinned by the current instruction.
#[allow(clippy::too_many_arguments)]
fn alloc_scratch(
    class: RegClass,
    idx: usize,
    free: &mut [Vec<u16>; 3],
    occupant: &mut BTreeMap<(RegClass, u16), PReg>,
    local_loc: &mut HashMap<PReg, Loc>,
    positions: &HashMap<PReg, Vec<usize>>,
    pinned: &[(RegClass, u16)],
    assigner: &mut Assigner<'_>,
    out: &mut Vec<MInst>,
) -> Option<u16> {
    if let Some(s) = free[class_index(class)].pop() {
        return Some(s);
    }
    // Evict the resident local with the farthest next use that is not pinned.
    // A value used *by the current instruction* (position == idx) is still
    // needed and must not be dropped, hence the `>= idx` comparison.
    let mut best: Option<(u16, PReg, usize)> = None;
    for ((c, s), holder) in occupant.iter() {
        if *c != class || pinned.contains(&(*c, *s)) {
            continue;
        }
        let next = positions
            .get(holder)
            .and_then(|p| p.iter().find(|x| **x >= idx))
            .copied()
            .unwrap_or(usize::MAX);
        if best.map(|(_, _, n)| next > n).unwrap_or(true) {
            best = Some((*s, *holder, next));
        }
    }
    let (s, victim, next) = best?;
    if next != usize::MAX {
        // Still needed later: spill it to a fresh slot.
        let slot = assigner.next_slot;
        assigner.next_slot += 1;
        out.push(MInst::Spill {
            slot,
            src: PReg { class, index: s },
        });
        local_loc.insert(victim, Loc::Slot(slot));
    } else {
        local_loc.remove(&victim);
    }
    occupant.remove(&(class, s));
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_module, JitOptions};
    use splitc_minic::compile_source;
    use splitc_opt::{optimize_module, OptOptions};
    use splitc_targets::{MachineValue, Simulator};

    const PRESSURE: &str = r#"
        fn horner(n: i32, x: *f32, y: *f32) {
            let c0: f32 = 1.5; let c1: f32 = 2.5; let c2: f32 = 3.5; let c3: f32 = 4.5;
            let c4: f32 = 5.5; let c5: f32 = 6.5; let c6: f32 = 7.5; let c7: f32 = 8.5;
            for (let i: i32 = 0; i < n; i = i + 1) {
                let v: f32 = x[i];
                y[i] = ((((((v * c7 + c6) * v + c5) * v + c4) * v + c3) * v + c2) * v + c1) * v + c0;
            }
        }
    "#;

    fn run_horner(target: &TargetDesc, mode: RegAllocMode) -> (Vec<f32>, u64, u64) {
        let mut m = compile_source(PRESSURE, "k").unwrap();
        optimize_module(&mut m, &OptOptions::scalar_only());
        splitc_opt::annotate_spill_orders(&mut m);
        let opts = JitOptions {
            regalloc: mode,
            allow_simd: true,
            fuse: true,
        };
        let (program, _stats) = compile_module(&m, target, &opts).unwrap();
        let n = 64usize;
        let mut mem = vec![0u8; 1 << 14];
        let xbase = 64usize;
        let ybase = 64 + 4 * n;
        for i in 0..n {
            mem[xbase + 4 * i..xbase + 4 * i + 4].copy_from_slice(&(i as f32 * 0.01).to_le_bytes());
        }
        let mut sim = Simulator::new(&program, target);
        sim.run(
            "horner",
            &[
                MachineValue::Int(n as i64),
                MachineValue::Int(xbase as i64),
                MachineValue::Int(ybase as i64),
            ],
            &mut mem,
        )
        .unwrap();
        let ys: Vec<f32> = (0..n)
            .map(|i| {
                let mut b = [0u8; 4];
                b.copy_from_slice(&mem[ybase + 4 * i..ybase + 4 * i + 4]);
                f32::from_le_bytes(b)
            })
            .collect();
        let stats = sim.stats();
        (ys, stats.spill_stores + stats.spill_reloads, stats.cycles)
    }

    fn expected_horner(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let v = i as f32 * 0.01;
                let c = [1.5f32, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, 8.5];
                ((((((v * c[7] + c[6]) * v + c[5]) * v + c[4]) * v + c[3]) * v + c[2]) * v + c[1])
                    * v
                    + c[0]
            })
            .collect()
    }

    #[test]
    fn all_modes_produce_correct_code_under_pressure() {
        let target = TargetDesc::x86_sse();
        for mode in [
            RegAllocMode::SplitAnnotations,
            RegAllocMode::OnlineGreedy,
            RegAllocMode::OnlineAnalyze,
        ] {
            let (ys, _, _) = run_horner(&target, mode);
            let want = expected_horner(64);
            for (a, b) in ys.iter().zip(&want) {
                assert!((a - b).abs() < 1e-4, "{mode:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn split_annotations_do_not_spill_more_than_greedy() {
        // On a register-starved target the annotation-guided assignment must
        // be at least as good as the no-analysis greedy assignment.
        let target = TargetDesc::x86_sse();
        let (_, split_spills, _) = run_horner(&target, RegAllocMode::SplitAnnotations);
        let (_, greedy_spills, _) = run_horner(&target, RegAllocMode::OnlineGreedy);
        assert!(
            split_spills <= greedy_spills,
            "split {split_spills} vs greedy {greedy_spills}"
        );
    }

    #[test]
    fn plenty_of_registers_means_no_dynamic_spills_in_simple_kernels() {
        let mut m = compile_source("fn add(a: i32, b: i32) -> i32 { return a + b; }", "k").unwrap();
        splitc_opt::annotate_spill_orders(&mut m);
        let target = TargetDesc::powerpc();
        let (program, stats) = compile_module(&m, &target, &JitOptions::default()).unwrap();
        assert_eq!(stats.static_spills, 0);
        let mut sim = Simulator::new(&program, &target);
        let mut mem = vec![0u8; 64];
        let out = sim
            .run(
                "add",
                &[MachineValue::Int(2), MachineValue::Int(40)],
                &mut mem,
            )
            .unwrap();
        assert_eq!(out, Some(MachineValue::Int(42)));
        assert_eq!(sim.stats().spill_stores, 0);
    }
}
