//! Helpers over the virtual machine code used inside the online compiler.
//!
//! The lowering phase produces machine instructions whose register indices are
//! *virtual* (unbounded); the register assignment phase then rewrites them to
//! the target's physical registers. This module provides the def/use/rewrite
//! introspection both phases need.

use splitc_targets::{MInst, PReg};

/// The registers read by a machine instruction, in operand order.
pub fn uses(inst: &MInst) -> Vec<PReg> {
    match inst {
        MInst::Imm { .. } | MInst::FImm { .. } | MInst::Jump { .. } | MInst::Reload { .. } => {
            vec![]
        }
        MInst::Mov { src, .. }
        | MInst::IntNeg { src, .. }
        | MInst::IntNot { src, .. }
        | MInst::FloatNeg { src, .. }
        | MInst::IntToFloat { src, .. }
        | MInst::FloatToInt { src, .. }
        | MInst::FloatCvt { src, .. }
        | MInst::IntResize { src, .. }
        | MInst::VecSplatInt { src, .. }
        | MInst::VecSplatFloat { src, .. }
        | MInst::VecReduceInt { src, .. }
        | MInst::VecReduceFloat { src, .. }
        | MInst::Spill { src, .. } => vec![*src],
        MInst::IntOp { lhs, rhs, .. }
        | MInst::FloatOp { lhs, rhs, .. }
        | MInst::IntCmp { lhs, rhs, .. }
        | MInst::FloatCmp { lhs, rhs, .. }
        | MInst::VecIntOp { lhs, rhs, .. }
        | MInst::VecFloatOp { lhs, rhs, .. } => vec![*lhs, *rhs],
        MInst::Select {
            cond,
            if_true,
            if_false,
            ..
        } => vec![*cond, *if_true, *if_false],
        MInst::Load { base, .. } | MInst::VecLoad { base, .. } => vec![*base],
        MInst::Store { base, src, .. } | MInst::VecStore { base, src, .. } => vec![*base, *src],
        MInst::BranchNz { cond, .. } => vec![*cond],
        MInst::Call { args, .. } => args.clone(),
        MInst::Ret { value } => value.iter().copied().collect(),
    }
}

/// The register defined by a machine instruction, if any.
pub fn def(inst: &MInst) -> Option<PReg> {
    match inst {
        MInst::Imm { dst, .. }
        | MInst::FImm { dst, .. }
        | MInst::Mov { dst, .. }
        | MInst::IntOp { dst, .. }
        | MInst::FloatOp { dst, .. }
        | MInst::IntNeg { dst, .. }
        | MInst::IntNot { dst, .. }
        | MInst::FloatNeg { dst, .. }
        | MInst::IntCmp { dst, .. }
        | MInst::FloatCmp { dst, .. }
        | MInst::Select { dst, .. }
        | MInst::IntToFloat { dst, .. }
        | MInst::FloatToInt { dst, .. }
        | MInst::FloatCvt { dst, .. }
        | MInst::IntResize { dst, .. }
        | MInst::Load { dst, .. }
        | MInst::VecLoad { dst, .. }
        | MInst::VecSplatInt { dst, .. }
        | MInst::VecSplatFloat { dst, .. }
        | MInst::VecIntOp { dst, .. }
        | MInst::VecFloatOp { dst, .. }
        | MInst::VecReduceInt { dst, .. }
        | MInst::VecReduceFloat { dst, .. }
        | MInst::Reload { dst, .. } => Some(*dst),
        MInst::Call { ret, .. } => *ret,
        MInst::Spill { .. }
        | MInst::Store { .. }
        | MInst::VecStore { .. }
        | MInst::Jump { .. }
        | MInst::BranchNz { .. }
        | MInst::Ret { .. } => None,
    }
}

/// Rewrite the *use* operands of `inst` with `f` (the definition is untouched).
pub fn rewrite_uses(inst: &mut MInst, mut f: impl FnMut(PReg) -> PReg) {
    match inst {
        MInst::Imm { .. } | MInst::FImm { .. } | MInst::Jump { .. } | MInst::Reload { .. } => {}
        MInst::Mov { src, .. }
        | MInst::IntNeg { src, .. }
        | MInst::IntNot { src, .. }
        | MInst::FloatNeg { src, .. }
        | MInst::IntToFloat { src, .. }
        | MInst::FloatToInt { src, .. }
        | MInst::FloatCvt { src, .. }
        | MInst::IntResize { src, .. }
        | MInst::VecSplatInt { src, .. }
        | MInst::VecSplatFloat { src, .. }
        | MInst::VecReduceInt { src, .. }
        | MInst::VecReduceFloat { src, .. }
        | MInst::Spill { src, .. } => *src = f(*src),
        MInst::IntOp { lhs, rhs, .. }
        | MInst::FloatOp { lhs, rhs, .. }
        | MInst::IntCmp { lhs, rhs, .. }
        | MInst::FloatCmp { lhs, rhs, .. }
        | MInst::VecIntOp { lhs, rhs, .. }
        | MInst::VecFloatOp { lhs, rhs, .. } => {
            *lhs = f(*lhs);
            *rhs = f(*rhs);
        }
        MInst::Select {
            cond,
            if_true,
            if_false,
            ..
        } => {
            *cond = f(*cond);
            *if_true = f(*if_true);
            *if_false = f(*if_false);
        }
        MInst::Load { base, .. } | MInst::VecLoad { base, .. } => *base = f(*base),
        MInst::Store { base, src, .. } | MInst::VecStore { base, src, .. } => {
            *base = f(*base);
            *src = f(*src);
        }
        MInst::BranchNz { cond, .. } => *cond = f(*cond),
        MInst::Call { args, .. } => {
            for a in args {
                *a = f(*a);
            }
        }
        MInst::Ret { value } => {
            if let Some(v) = value {
                *v = f(*v);
            }
        }
    }
}

/// Rewrite the *definition* operand of `inst` with `f`, if it has one.
pub fn rewrite_def(inst: &mut MInst, mut f: impl FnMut(PReg) -> PReg) {
    match inst {
        MInst::Imm { dst, .. }
        | MInst::FImm { dst, .. }
        | MInst::Mov { dst, .. }
        | MInst::IntOp { dst, .. }
        | MInst::FloatOp { dst, .. }
        | MInst::IntNeg { dst, .. }
        | MInst::IntNot { dst, .. }
        | MInst::FloatNeg { dst, .. }
        | MInst::IntCmp { dst, .. }
        | MInst::FloatCmp { dst, .. }
        | MInst::Select { dst, .. }
        | MInst::IntToFloat { dst, .. }
        | MInst::FloatToInt { dst, .. }
        | MInst::FloatCvt { dst, .. }
        | MInst::IntResize { dst, .. }
        | MInst::Load { dst, .. }
        | MInst::VecLoad { dst, .. }
        | MInst::VecSplatInt { dst, .. }
        | MInst::VecSplatFloat { dst, .. }
        | MInst::VecIntOp { dst, .. }
        | MInst::VecFloatOp { dst, .. }
        | MInst::VecReduceInt { dst, .. }
        | MInst::VecReduceFloat { dst, .. }
        | MInst::Reload { dst, .. } => *dst = f(*dst),
        MInst::Call { ret: Some(r), .. } => *r = f(*r),
        _ => {}
    }
}

/// Control-flow successors of a terminator.
pub fn successors(inst: &MInst) -> Vec<u32> {
    match inst {
        MInst::Jump { target } => vec![*target],
        MInst::BranchNz {
            then_target,
            else_target,
            ..
        } => vec![*then_target, *else_target],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_targets::{AluOp, Width};

    #[test]
    fn def_use_and_rewrite_cover_alu() {
        let mut i = MInst::IntOp {
            op: AluOp::Add,
            width: Width::W32,
            signed: true,
            dst: PReg::int(0),
            lhs: PReg::int(1),
            rhs: PReg::int(2),
        };
        assert_eq!(def(&i), Some(PReg::int(0)));
        assert_eq!(uses(&i), vec![PReg::int(1), PReg::int(2)]);
        rewrite_uses(&mut i, |r| PReg::int(r.index + 10));
        rewrite_def(&mut i, |_| PReg::int(5));
        assert_eq!(def(&i), Some(PReg::int(5)));
        assert_eq!(uses(&i), vec![PReg::int(11), PReg::int(12)]);
    }

    #[test]
    fn stores_and_branches_have_no_defs() {
        let s = MInst::Store {
            width: Width::W32,
            float: true,
            base: PReg::int(0),
            offset: 0,
            src: PReg::float(1),
        };
        assert_eq!(def(&s), None);
        assert_eq!(uses(&s), vec![PReg::int(0), PReg::float(1)]);
        let b = MInst::BranchNz {
            cond: PReg::int(3),
            then_target: 1,
            else_target: 2,
        };
        assert_eq!(successors(&b), vec![1, 2]);
        assert_eq!(uses(&b), vec![PReg::int(3)]);
        assert_eq!(successors(&MInst::Ret { value: None }), Vec::<u32>::new());
    }

    #[test]
    fn calls_use_args_and_define_ret() {
        let mut c = MInst::Call {
            callee: "g".into(),
            args: vec![PReg::int(1), PReg::float(0)],
            ret: Some(PReg::float(2)),
        };
        assert_eq!(def(&c), Some(PReg::float(2)));
        assert_eq!(uses(&c).len(), 2);
        rewrite_uses(&mut c, |r| PReg {
            class: r.class,
            index: r.index + 1,
        });
        assert_eq!(uses(&c), vec![PReg::int(2), PReg::float(1)]);
    }
}
