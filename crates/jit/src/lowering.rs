//! Instruction selection: portable bytecode to virtual machine code.
//!
//! Lowering is deliberately cheap — this is the *online* step of split
//! compilation and it runs on the device. In particular:
//!
//! * the portable lane-count builtin (`vec.width`) is folded to a constant
//!   chosen for the target;
//! * on SIMD targets, the portable vector builtins map one-to-one onto vector
//!   machine instructions;
//! * on scalar-only targets, the builtins are *scalarized*: each portable
//!   vector value becomes a bundle of scalar lane registers and each vector
//!   operation becomes an unrolled sequence of scalar operations — exactly the
//!   fallback the paper describes for the UltraSparc and PowerPC JITs.

use crate::compile::JitError;
use splitc_targets::{AluOp, CmpPred, FpuOp, MInst, PReg, RedOp, RegClass, TargetDesc, Width};
use splitc_vbc::{
    BinOp, CmpOp, Function, Inst, ReduceOp, ScalarType, Type, UnOp, VReg,
    DEFAULT_VECTOR_WIDTH_BYTES,
};
use std::collections::HashMap;

/// Machine code with unbounded virtual register indices, before assignment.
#[derive(Debug, Clone)]
pub(crate) struct VirtualFunc {
    /// Function name.
    pub name: String,
    /// Virtual registers holding the parameters, in order.
    pub params: Vec<PReg>,
    /// One instruction vector per basic block (indices match the bytecode).
    pub blocks: Vec<Vec<MInst>>,
    /// Map from bytecode registers to their machine register (scalars only).
    pub vbc_map: HashMap<VReg, PReg>,
    /// Machine instructions emitted (lowering work measure).
    pub emitted: u64,
}

fn class_index(c: RegClass) -> usize {
    match c {
        RegClass::Int => 0,
        RegClass::Float => 1,
        RegClass::Vec => 2,
    }
}

fn scalar_class(ty: ScalarType) -> RegClass {
    if ty.is_float() {
        RegClass::Float
    } else {
        RegClass::Int
    }
}

fn width_of(ty: ScalarType) -> Width {
    Width::from_bytes(ty.size_bytes())
}

struct Lowerer<'a> {
    func: &'a Function,
    target: &'a TargetDesc,
    use_simd: bool,
    map: HashMap<VReg, PReg>,
    lanes: HashMap<VReg, Vec<PReg>>,
    next: [u32; 3],
    blocks: Vec<Vec<MInst>>,
    current: usize,
    emitted: u64,
}

impl<'a> Lowerer<'a> {
    fn fresh(&mut self, class: RegClass) -> Result<PReg, JitError> {
        let idx = self.next[class_index(class)];
        self.next[class_index(class)] += 1;
        if idx > u32::from(u16::MAX) {
            return Err(JitError::Internal(format!(
                "function {} exhausts the virtual register space",
                self.func.name
            )));
        }
        Ok(PReg {
            class,
            index: idx as u16,
        })
    }

    fn scalar_reg(&mut self, r: VReg) -> Result<PReg, JitError> {
        if let Some(p) = self.map.get(&r) {
            return Ok(*p);
        }
        let class = match self.func.vreg_type(r) {
            Type::Scalar(s) => scalar_class(s),
            Type::Vector(_) => {
                return Err(JitError::Internal(format!(
                    "vector register {r} used in a scalar position in {}",
                    self.func.name
                )));
            }
        };
        let p = self.fresh(class)?;
        self.map.insert(r, p);
        Ok(p)
    }

    /// Number of lanes the target (or the scalarizer) uses for `elem`.
    fn lane_count(&self, elem: ScalarType) -> u64 {
        let bytes = if self.use_simd {
            self.target.vector_bytes()
        } else {
            DEFAULT_VECTOR_WIDTH_BYTES
        };
        elem.lanes_for_width(bytes)
    }

    /// The scalar lane registers standing in for vector register `r`.
    fn lane_regs(&mut self, r: VReg, elem: ScalarType) -> Result<Vec<PReg>, JitError> {
        if let Some(l) = self.lanes.get(&r) {
            return Ok(l.clone());
        }
        let n = self.lane_count(elem) as usize;
        let class = scalar_class(elem);
        let mut regs = Vec::with_capacity(n);
        for _ in 0..n {
            regs.push(self.fresh(class)?);
        }
        self.lanes.insert(r, regs.clone());
        Ok(regs)
    }

    fn vec_reg(&mut self, r: VReg) -> Result<PReg, JitError> {
        if let Some(p) = self.map.get(&r) {
            return Ok(*p);
        }
        let p = self.fresh(RegClass::Vec)?;
        self.map.insert(r, p);
        Ok(p)
    }

    fn emit(&mut self, inst: MInst) {
        self.emitted += 1;
        self.blocks[self.current].push(inst);
    }

    fn alu_of(op: BinOp) -> AluOp {
        match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Rem => AluOp::Rem,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => AluOp::Shr,
            BinOp::Min => AluOp::Min,
            BinOp::Max => AluOp::Max,
        }
    }

    fn fpu_of(op: BinOp) -> Result<FpuOp, JitError> {
        Ok(match op {
            BinOp::Add => FpuOp::Add,
            BinOp::Sub => FpuOp::Sub,
            BinOp::Mul => FpuOp::Mul,
            BinOp::Div => FpuOp::Div,
            BinOp::Min => FpuOp::Min,
            BinOp::Max => FpuOp::Max,
            other => {
                return Err(JitError::Internal(format!(
                    "operator {other} has no floating-point machine form"
                )));
            }
        })
    }

    fn pred_of(op: CmpOp) -> CmpPred {
        match op {
            CmpOp::Eq => CmpPred::Eq,
            CmpOp::Ne => CmpPred::Ne,
            CmpOp::Lt => CmpPred::Lt,
            CmpOp::Le => CmpPred::Le,
            CmpOp::Gt => CmpPred::Gt,
            CmpOp::Ge => CmpPred::Ge,
        }
    }

    fn red_of(op: ReduceOp) -> RedOp {
        match op {
            ReduceOp::Add => RedOp::Add,
            ReduceOp::Min => RedOp::Min,
            ReduceOp::Max => RedOp::Max,
        }
    }

    fn scalar_bin(
        &mut self,
        op: BinOp,
        ty: ScalarType,
        dst: PReg,
        lhs: PReg,
        rhs: PReg,
    ) -> Result<(), JitError> {
        if ty.is_float() {
            self.emit(MInst::FloatOp {
                op: Self::fpu_of(op)?,
                double: ty == ScalarType::F64,
                dst,
                lhs,
                rhs,
            });
        } else {
            self.emit(MInst::IntOp {
                op: Self::alu_of(op),
                width: width_of(ty),
                signed: ty.is_signed(),
                dst,
                lhs,
                rhs,
            });
        }
        Ok(())
    }

    fn lower_inst(&mut self, inst: &Inst) -> Result<(), JitError> {
        match inst {
            Inst::Const { dst, ty, imm } => {
                let d = self.scalar_reg(*dst)?;
                if ty.is_float() {
                    // Canonicalize even for modules whose constants were not
                    // rounded at build time: an FImm of single type must
                    // hold an f32-representable value.
                    self.emit(MInst::FImm {
                        dst: d,
                        value: ty.canonicalize_float(imm.as_f64()),
                    });
                } else {
                    self.emit(MInst::Imm {
                        dst: d,
                        value: splitc_vbc::normalize_int(*ty, imm.as_i64()),
                    });
                }
            }
            Inst::Move { dst, src, .. } => {
                let d = self.scalar_reg(*dst)?;
                let s = self.scalar_reg(*src)?;
                self.emit(MInst::Mov { dst: d, src: s });
            }
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                let d = self.scalar_reg(*dst)?;
                let l = self.scalar_reg(*lhs)?;
                let r = self.scalar_reg(*rhs)?;
                self.scalar_bin(*op, *ty, d, l, r)?;
            }
            Inst::Un { op, ty, dst, src } => {
                let d = self.scalar_reg(*dst)?;
                let s = self.scalar_reg(*src)?;
                match (op, ty.is_float()) {
                    (UnOp::Neg, true) => self.emit(MInst::FloatNeg {
                        double: *ty == ScalarType::F64,
                        dst: d,
                        src: s,
                    }),
                    (UnOp::Neg, false) => self.emit(MInst::IntNeg {
                        width: width_of(*ty),
                        dst: d,
                        src: s,
                    }),
                    (UnOp::Not, _) => self.emit(MInst::IntNot {
                        width: width_of(*ty),
                        dst: d,
                        src: s,
                    }),
                }
            }
            Inst::Cmp {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                let d = self.scalar_reg(*dst)?;
                let l = self.scalar_reg(*lhs)?;
                let r = self.scalar_reg(*rhs)?;
                if ty.is_float() {
                    self.emit(MInst::FloatCmp {
                        pred: Self::pred_of(*op),
                        double: *ty == ScalarType::F64,
                        dst: d,
                        lhs: l,
                        rhs: r,
                    });
                } else {
                    self.emit(MInst::IntCmp {
                        pred: Self::pred_of(*op),
                        width: width_of(*ty),
                        signed: ty.is_signed(),
                        dst: d,
                        lhs: l,
                        rhs: r,
                    });
                }
            }
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
                ..
            } => {
                let d = self.scalar_reg(*dst)?;
                let c = self.scalar_reg(*cond)?;
                let t = self.scalar_reg(*if_true)?;
                let e = self.scalar_reg(*if_false)?;
                self.emit(MInst::Select {
                    dst: d,
                    cond: c,
                    if_true: t,
                    if_false: e,
                });
            }
            Inst::Cast { dst, to, src, from } => {
                let d = self.scalar_reg(*dst)?;
                let s = self.scalar_reg(*src)?;
                match (from.is_float(), to.is_float()) {
                    (false, false) => self.emit(MInst::IntResize {
                        width: width_of(*to),
                        signed: to.is_signed(),
                        dst: d,
                        src: s,
                    }),
                    (false, true) => self.emit(MInst::IntToFloat {
                        signed: from.is_signed(),
                        double: *to == ScalarType::F64,
                        dst: d,
                        src: s,
                    }),
                    (true, false) => self.emit(MInst::FloatToInt {
                        width: width_of(*to),
                        signed: to.is_signed(),
                        dst: d,
                        src: s,
                    }),
                    (true, true) => self.emit(MInst::FloatCvt {
                        to_double: *to == ScalarType::F64,
                        dst: d,
                        src: s,
                    }),
                }
            }
            Inst::Load {
                dst,
                ty,
                addr,
                offset,
            } => {
                let d = self.scalar_reg(*dst)?;
                let a = self.scalar_reg(*addr)?;
                self.emit(MInst::Load {
                    width: width_of(*ty),
                    float: ty.is_float(),
                    signed: ty.is_signed(),
                    dst: d,
                    base: a,
                    offset: *offset,
                });
            }
            Inst::Store {
                ty,
                addr,
                offset,
                value,
            } => {
                let a = self.scalar_reg(*addr)?;
                let v = self.scalar_reg(*value)?;
                self.emit(MInst::Store {
                    width: width_of(*ty),
                    float: ty.is_float(),
                    base: a,
                    offset: *offset,
                    src: v,
                });
            }
            Inst::Call { dst, callee, args } => {
                let ret = match dst {
                    Some(d) => Some(self.scalar_reg(*d)?),
                    None => None,
                };
                let mut margs = Vec::with_capacity(args.len());
                for a in args {
                    margs.push(self.scalar_reg(*a)?);
                }
                self.emit(MInst::Call {
                    callee: callee.clone(),
                    args: margs,
                    ret,
                });
            }
            Inst::VecWidth { dst, elem } => {
                // This is where the online compiler resolves the portable lane
                // count: a plain constant for this target.
                let d = self.scalar_reg(*dst)?;
                self.emit(MInst::Imm {
                    dst: d,
                    value: self.lane_count(*elem) as i64,
                });
            }
            Inst::VecSplat { dst, elem, src } => {
                let s = self.scalar_reg(*src)?;
                if self.use_simd {
                    let d = self.vec_reg(*dst)?;
                    if elem.is_float() {
                        self.emit(MInst::VecSplatFloat {
                            elem: width_of(*elem),
                            dst: d,
                            src: s,
                        });
                    } else {
                        self.emit(MInst::VecSplatInt {
                            elem: width_of(*elem),
                            dst: d,
                            src: s,
                        });
                    }
                } else {
                    let lanes = self.lane_regs(*dst, *elem)?;
                    for lane in lanes {
                        self.emit(MInst::Mov { dst: lane, src: s });
                    }
                }
            }
            Inst::VecLoad {
                dst,
                elem,
                addr,
                offset,
            } => {
                let a = self.scalar_reg(*addr)?;
                if self.use_simd {
                    let d = self.vec_reg(*dst)?;
                    self.emit(MInst::VecLoad {
                        dst: d,
                        base: a,
                        offset: *offset,
                    });
                } else {
                    let lanes = self.lane_regs(*dst, *elem)?;
                    for (i, lane) in lanes.into_iter().enumerate() {
                        self.emit(MInst::Load {
                            width: width_of(*elem),
                            float: elem.is_float(),
                            signed: elem.is_signed(),
                            dst: lane,
                            base: a,
                            offset: *offset + (i as i64) * elem.size_bytes() as i64,
                        });
                    }
                }
            }
            Inst::VecStore {
                elem,
                addr,
                offset,
                value,
            } => {
                let a = self.scalar_reg(*addr)?;
                if self.use_simd {
                    let v = self.vec_reg(*value)?;
                    self.emit(MInst::VecStore {
                        base: a,
                        offset: *offset,
                        src: v,
                    });
                } else {
                    let lanes = self.lane_regs(*value, *elem)?;
                    for (i, lane) in lanes.into_iter().enumerate() {
                        self.emit(MInst::Store {
                            width: width_of(*elem),
                            float: elem.is_float(),
                            base: a,
                            offset: *offset + (i as i64) * elem.size_bytes() as i64,
                            src: lane,
                        });
                    }
                }
            }
            Inst::VecBin {
                op,
                elem,
                dst,
                lhs,
                rhs,
            } => {
                if self.use_simd {
                    let d = self.vec_reg(*dst)?;
                    let l = self.vec_reg(*lhs)?;
                    let r = self.vec_reg(*rhs)?;
                    if elem.is_float() {
                        self.emit(MInst::VecFloatOp {
                            op: Self::fpu_of(*op)?,
                            elem: width_of(*elem),
                            dst: d,
                            lhs: l,
                            rhs: r,
                        });
                    } else {
                        self.emit(MInst::VecIntOp {
                            op: Self::alu_of(*op),
                            elem: width_of(*elem),
                            signed: elem.is_signed(),
                            dst: d,
                            lhs: l,
                            rhs: r,
                        });
                    }
                } else {
                    let l = self.lane_regs(*lhs, *elem)?;
                    let r = self.lane_regs(*rhs, *elem)?;
                    let d = self.lane_regs(*dst, *elem)?;
                    for i in 0..d.len() {
                        self.scalar_bin(*op, *elem, d[i], l[i], r[i])?;
                    }
                }
            }
            Inst::VecReduce { op, elem, dst, src } => {
                let d = self.scalar_reg(*dst)?;
                if self.use_simd {
                    let s = self.vec_reg(*src)?;
                    if elem.is_float() {
                        self.emit(MInst::VecReduceFloat {
                            op: Self::red_of(*op),
                            elem: width_of(*elem),
                            dst: d,
                            src: s,
                        });
                    } else {
                        self.emit(MInst::VecReduceInt {
                            op: Self::red_of(*op),
                            elem: width_of(*elem),
                            signed: elem.is_signed(),
                            dst: d,
                            src: s,
                        });
                    }
                } else {
                    let lanes = self.lane_regs(*src, *elem)?;
                    self.emit(MInst::Mov {
                        dst: d,
                        src: lanes[0],
                    });
                    for lane in &lanes[1..] {
                        self.scalar_bin(op.as_bin_op(), *elem, d, d, *lane)?;
                    }
                }
            }
            Inst::Jump { target } => self.emit(MInst::Jump { target: target.0 }),
            Inst::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.scalar_reg(*cond)?;
                self.emit(MInst::BranchNz {
                    cond: c,
                    then_target: then_bb.0,
                    else_target: else_bb.0,
                });
            }
            Inst::Ret { value } => {
                let v = match value {
                    Some(r) => Some(self.scalar_reg(*r)?),
                    None => None,
                };
                self.emit(MInst::Ret { value: v });
            }
        }
        Ok(())
    }
}

/// Lower one bytecode function to virtual machine code for `target`.
///
/// `use_simd` selects between direct SIMD mapping and scalarization of the
/// portable vector builtins; it must only be `true` when the target has a
/// vector unit.
pub(crate) fn lower_function(
    func: &Function,
    target: &TargetDesc,
    use_simd: bool,
) -> Result<VirtualFunc, JitError> {
    let mut low = Lowerer {
        func,
        target,
        use_simd,
        map: HashMap::new(),
        lanes: HashMap::new(),
        next: [0, 0, 0],
        blocks: vec![Vec::new(); func.blocks.len()],
        current: 0,
        emitted: 0,
    };
    // Parameters first, so they occupy the first virtual registers.
    let mut params = Vec::with_capacity(func.params.len());
    for (reg, ty) in &func.params {
        if ty.is_vector() {
            return Err(JitError::Internal(format!(
                "function {} has a vector-typed parameter",
                func.name
            )));
        }
        params.push(low.scalar_reg(*reg)?);
    }
    for block in &func.blocks {
        low.current = block.id.index();
        for inst in &block.insts {
            low.lower_inst(inst)?;
        }
    }
    Ok(VirtualFunc {
        name: func.name.clone(),
        params,
        blocks: low.blocks,
        vbc_map: low.map,
        emitted: low.emitted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;
    use splitc_opt::{optimize_module, OptOptions};

    fn saxpy_module(vectorized: bool) -> splitc_vbc::Module {
        let mut m = compile_source(
            "fn saxpy(n: i32, a: f32, x: *f32, y: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
            }",
            "k",
        )
        .unwrap();
        if vectorized {
            optimize_module(&mut m, &OptOptions::full());
        }
        m
    }

    #[test]
    fn scalar_code_lowers_one_to_one_blocks() {
        let m = saxpy_module(false);
        let f = m.function("saxpy").unwrap();
        let target = TargetDesc::x86_sse();
        let vf = lower_function(f, &target, true).unwrap();
        assert_eq!(vf.blocks.len(), f.blocks.len());
        assert_eq!(vf.params.len(), 4);
        assert!(vf.emitted as usize >= f.num_insts());
        // No vector machine instructions in scalar bytecode.
        assert!(vf.blocks.iter().flatten().all(|i| !i.is_vector()));
    }

    #[test]
    fn simd_target_maps_builtins_to_vector_instructions() {
        let m = saxpy_module(true);
        let f = m.function("saxpy").unwrap();
        let target = TargetDesc::x86_sse();
        let vf = lower_function(f, &target, true).unwrap();
        assert!(vf.blocks.iter().flatten().any(|i| i.is_vector()));
        // The portable lane count folded to 4 (16 bytes / f32).
        assert!(vf
            .blocks
            .iter()
            .flatten()
            .any(|i| matches!(i, MInst::Imm { value: 4, .. })));
    }

    #[test]
    fn scalar_only_target_scalarizes_with_unrolled_lanes() {
        let m = saxpy_module(true);
        let f = m.function("saxpy").unwrap();
        let target = TargetDesc::ultrasparc();
        let vf = lower_function(f, &target, false).unwrap();
        // No vector machine instructions may appear...
        assert!(vf.blocks.iter().flatten().all(|i| !i.is_vector()));
        // ...but the vector body is unrolled: more machine instructions than
        // the SIMD lowering of the same bytecode.
        let simd = lower_function(f, &TargetDesc::x86_sse(), true).unwrap();
        assert!(vf.emitted > simd.emitted);
        // The scalarization factor still shows up as the lane-count constant.
        assert!(vf
            .blocks
            .iter()
            .flatten()
            .any(|i| matches!(i, MInst::Imm { value: 4, .. })));
    }

    #[test]
    fn u8_kernels_scalarize_to_sixteen_lanes() {
        let mut m = compile_source(
            "fn max_u8(n: i32, x: *u8) -> u8 {
                let mx: u8 = 0;
                for (let i: i32 = 0; i < n; i = i + 1) { mx = max(mx, x[i]); }
                return mx;
            }",
            "k",
        )
        .unwrap();
        optimize_module(&mut m, &OptOptions::full());
        let f = m.function("max_u8").unwrap();
        let vf = lower_function(f, &TargetDesc::powerpc(), false).unwrap();
        // 16 u8 lanes -> at least 16 scalar loads in the unrolled vector body.
        let loads = vf
            .blocks
            .iter()
            .flatten()
            .filter(|i| {
                matches!(
                    i,
                    MInst::Load {
                        width: Width::W8,
                        ..
                    }
                )
            })
            .count();
        assert!(
            loads >= 17,
            "16 unrolled lanes plus the scalar epilogue, got {loads}"
        );
    }
}
