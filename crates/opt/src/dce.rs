//! Dead-code elimination.

use crate::defuse::DefUse;
use splitc_vbc::{Function, Module};

/// Remove instructions whose result is never used and that have no side
/// effects, iterating to a fixed point. Returns the number of instructions
/// removed.
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let du = DefUse::compute(f);
        let mut removed = 0;
        for block in &mut f.blocks {
            let before = block.insts.len();
            block.insts.retain(|inst| {
                if inst.has_side_effects() || inst.is_terminator() {
                    return true;
                }
                match inst.dst() {
                    Some(d) => !du.is_dead(d),
                    None => true,
                }
            });
            removed += before - block.insts.len();
        }
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

/// Run [`eliminate_dead_code`] over every function of a module.
pub fn eliminate_dead_code_module(m: &mut Module) -> usize {
    m.functions_mut().iter_mut().map(eliminate_dead_code).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_vbc::{BinOp, FunctionBuilder, ScalarType, Type};

    #[test]
    fn removes_transitively_dead_chains() {
        let mut b = FunctionBuilder::new(
            "f",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let x = b.param(0);
        // Dead chain: d1 feeds d2, neither reaches the return.
        let d1 = b.bin(BinOp::Add, ScalarType::I32, x, x);
        let d2 = b.bin(BinOp::Mul, ScalarType::I32, d1, d1);
        let _ = d2;
        let live = b.bin(BinOp::Sub, ScalarType::I32, x, x);
        b.ret(Some(live));
        let mut f = b.finish();
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 2);
        assert_eq!(f.num_insts(), 2);
    }

    #[test]
    fn keeps_side_effecting_instructions() {
        let mut b = FunctionBuilder::new("f", &[Type::Scalar(ScalarType::Ptr)], None);
        let p = b.param(0);
        let v = b.load(ScalarType::I32, p, 0); // result unused but loads are pure: removable
        let c = b.const_int(ScalarType::I32, 3);
        b.store(ScalarType::I32, p, 0, c); // must stay
        let _ = v;
        b.ret(None);
        let mut f = b.finish();
        eliminate_dead_code(&mut f);
        let kinds: Vec<_> = f
            .block(f.entry)
            .insts
            .iter()
            .map(splitc_vbc::format_inst)
            .collect();
        assert!(kinds.iter().any(|s| s.starts_with("store")));
        assert!(
            !kinds.iter().any(|s| s.contains("= load")),
            "dead load should go: {kinds:?}"
        );
    }

    #[test]
    fn module_wrapper_sums_removals() {
        let mut m = splitc_vbc::Module::new("m");
        for name in ["a", "b"] {
            let mut b = FunctionBuilder::new(name, &[Type::Scalar(ScalarType::I32)], None);
            let x = b.param(0);
            let dead = b.bin(BinOp::Add, ScalarType::I32, x, x);
            let _ = dead;
            b.ret(None);
            m.add_function(b.finish());
        }
        assert_eq!(eliminate_dead_code_module(&mut m), 2);
    }
}
