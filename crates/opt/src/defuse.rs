//! Definition/use chains over the (non-SSA) bytecode.

use splitc_vbc::{BlockId, Function, Inst, VReg};

/// A position inside a function: block id plus instruction index in the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstPos {
    /// The containing block.
    pub block: BlockId,
    /// The index of the instruction within the block.
    pub index: usize,
}

/// Definition and use sites for every virtual register of a function.
#[derive(Debug, Clone, Default)]
pub struct DefUse {
    defs: Vec<Vec<InstPos>>,
    uses: Vec<Vec<InstPos>>,
}

impl DefUse {
    /// Compute def/use chains for `f`.
    pub fn compute(f: &Function) -> Self {
        let mut defs = vec![Vec::new(); f.num_vregs()];
        let mut uses = vec![Vec::new(); f.num_vregs()];
        for block in &f.blocks {
            for (index, inst) in block.insts.iter().enumerate() {
                let pos = InstPos {
                    block: block.id,
                    index,
                };
                if let Some(d) = inst.dst() {
                    defs[d.index()].push(pos);
                }
                for u in inst.uses() {
                    uses[u.index()].push(pos);
                }
            }
        }
        DefUse { defs, uses }
    }

    /// All definition sites of `r` (parameters have no explicit definition site).
    pub fn defs(&self, r: VReg) -> &[InstPos] {
        &self.defs[r.index()]
    }

    /// All use sites of `r`.
    pub fn uses(&self, r: VReg) -> &[InstPos] {
        &self.uses[r.index()]
    }

    /// If `r` is defined by exactly one instruction, return its position.
    pub fn single_def(&self, r: VReg) -> Option<InstPos> {
        match self.defs(r) {
            [single] => Some(*single),
            _ => None,
        }
    }

    /// `true` if `r` has no uses anywhere in the function.
    pub fn is_dead(&self, r: VReg) -> bool {
        self.uses(r).is_empty()
    }

    /// Number of uses of `r`.
    pub fn use_count(&self, r: VReg) -> usize {
        self.uses(r).len()
    }
}

/// Fetch the instruction at `pos`.
///
/// # Panics
///
/// Panics if `pos` is out of range for `f`.
pub fn inst_at(f: &Function, pos: InstPos) -> &Inst {
    &f.block(pos.block).insts[pos.index]
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_vbc::{BinOp, FunctionBuilder, ScalarType, Type};

    #[test]
    fn tracks_defs_and_uses() {
        let mut b = FunctionBuilder::new(
            "f",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let x = b.param(0);
        let one = b.const_int(ScalarType::I32, 1);
        let y = b.bin(BinOp::Add, ScalarType::I32, x, one);
        let z = b.bin(BinOp::Mul, ScalarType::I32, y, y);
        b.ret(Some(z));
        let f = b.finish();
        let du = DefUse::compute(&f);

        assert!(du.defs(x).is_empty(), "parameters have no definition site");
        assert_eq!(du.use_count(x), 1);
        assert_eq!(du.use_count(y), 2);
        assert_eq!(du.use_count(z), 1);
        assert!(du.single_def(y).is_some());
        assert!(!du.is_dead(one));

        let def_z = du.single_def(z).unwrap();
        assert!(matches!(
            inst_at(&f, def_z),
            Inst::Bin { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn multiple_definitions_are_not_single() {
        let mut b = FunctionBuilder::new("f", &[], None);
        let t = b.new_vreg(ScalarType::I32);
        let a = b.const_int(ScalarType::I32, 1);
        let c = b.const_int(ScalarType::I32, 2);
        b.push(Inst::Move {
            dst: t,
            ty: ScalarType::I32,
            src: a,
        });
        b.push(Inst::Move {
            dst: t,
            ty: ScalarType::I32,
            src: c,
        });
        b.ret(None);
        let f = b.finish();
        let du = DefUse::compute(&f);
        assert_eq!(du.defs(t).len(), 2);
        assert!(du.single_def(t).is_none());
        assert!(du.is_dead(t));
    }
}
