//! Constant folding and conservative copy propagation.
//!
//! These are classical "cheap" optimizations that the offline compiler runs so
//! that the JIT does not have to; they also clean up the address-arithmetic
//! chains produced by the front end before vectorization.

use crate::defuse::DefUse;
use splitc_vbc::{eval_bin, eval_cast, eval_cmp, Function, Immediate, Inst, Module, Value};
use std::collections::HashMap;

/// Statistics of one folding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Instructions replaced by constants.
    pub folded: usize,
    /// Register operands rewritten by copy propagation.
    pub copies_propagated: usize,
}

fn const_value(inst: &Inst) -> Option<(splitc_vbc::ScalarType, Value)> {
    if let Inst::Const { ty, imm, .. } = inst {
        let v = if ty.is_float() {
            Value::Float(imm.as_f64())
        } else {
            Value::Int(splitc_vbc::normalize_int(*ty, imm.as_i64()))
        };
        Some((*ty, v))
    } else {
        None
    }
}

fn value_to_imm(ty: splitc_vbc::ScalarType, v: &Value) -> Immediate {
    if ty.is_float() {
        Immediate::Float(v.as_float())
    } else {
        Immediate::Int(v.as_int())
    }
}

/// Fold constants and propagate single-definition copies within one function.
///
/// Folding is conservative for the non-SSA form: an instruction is only folded
/// when every operand register has a *single* definition in the whole function
/// and that definition is a constant.
pub fn fold_function(f: &mut Function) -> FoldStats {
    let mut stats = FoldStats::default();
    loop {
        let du = DefUse::compute(f);
        // Map: register -> its constant value, for single-def constants.
        let mut consts: HashMap<splitc_vbc::VReg, (splitc_vbc::ScalarType, Value)> = HashMap::new();
        // Map: register -> replacement register, for single-def copies of single-def sources.
        let mut copies: HashMap<splitc_vbc::VReg, splitc_vbc::VReg> = HashMap::new();
        for block in &f.blocks {
            for inst in &block.insts {
                if let Some(dst) = inst.dst() {
                    if du.single_def(dst).is_some() {
                        if let Some(cv) = const_value(inst) {
                            consts.insert(dst, cv);
                        } else if let Inst::Move { src, .. } = inst {
                            let src_single =
                                du.single_def(*src).is_some() || du.defs(*src).is_empty();
                            if src_single {
                                copies.insert(dst, *src);
                            }
                        }
                    }
                }
            }
        }
        // Resolve copy chains (a -> b -> c becomes a -> c).
        let resolve = |mut r: splitc_vbc::VReg| {
            let mut hops = 0;
            while let Some(next) = copies.get(&r) {
                r = *next;
                hops += 1;
                if hops > copies.len() {
                    break;
                }
            }
            r
        };

        let mut changed = 0usize;
        let mut propagated = 0usize;
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                // Copy propagation: rewrite used registers to their sources.
                let before = inst.clone();
                inst.rewrite_regs(|r| {
                    if Some(r) == inst_dst_of(&before) {
                        r
                    } else {
                        resolve(r)
                    }
                });
                if *inst != before {
                    propagated += 1;
                }

                // Constant folding.
                let folded: Option<Inst> = match &*inst {
                    Inst::Bin {
                        op,
                        ty,
                        dst,
                        lhs,
                        rhs,
                    } => match (consts.get(lhs), consts.get(rhs)) {
                        (Some((_, a)), Some((_, b))) => {
                            eval_bin(*op, *ty, a, b).ok().map(|v| Inst::Const {
                                dst: *dst,
                                ty: *ty,
                                imm: value_to_imm(*ty, &v),
                            })
                        }
                        _ => None,
                    },
                    Inst::Cmp {
                        op,
                        ty,
                        dst,
                        lhs,
                        rhs,
                    } => match (consts.get(lhs), consts.get(rhs)) {
                        (Some((_, a)), Some((_, b))) => Some(Inst::Const {
                            dst: *dst,
                            ty: splitc_vbc::ScalarType::I32,
                            imm: Immediate::Int(eval_cmp(*op, *ty, a, b)),
                        }),
                        _ => None,
                    },
                    Inst::Cast { dst, to, src, from } => consts.get(src).map(|(_, v)| {
                        let out = eval_cast(*from, *to, v);
                        Inst::Const {
                            dst: *dst,
                            ty: *to,
                            imm: value_to_imm(*to, &out),
                        }
                    }),
                    _ => None,
                };
                if let Some(new_inst) = folded {
                    if *inst != new_inst {
                        *inst = new_inst;
                        changed += 1;
                    }
                }
            }
        }
        stats.folded += changed;
        stats.copies_propagated += propagated;
        if changed == 0 && propagated == 0 {
            break;
        }
    }
    stats
}

fn inst_dst_of(inst: &Inst) -> Option<splitc_vbc::VReg> {
    inst.dst()
}

/// Run [`fold_function`] over every function of a module.
pub fn fold_module(m: &mut Module) -> FoldStats {
    let mut total = FoldStats::default();
    for f in m.functions_mut() {
        let s = fold_function(f);
        total.folded += s.folded;
        total.copies_propagated += s.copies_propagated;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_vbc::{BinOp, CmpOp, FunctionBuilder, ScalarType, Type, VReg};

    #[test]
    fn folds_constant_arithmetic_chains() {
        let mut b = FunctionBuilder::new("f", &[], Some(Type::Scalar(ScalarType::I32)));
        let two = b.const_int(ScalarType::I32, 2);
        let three = b.const_int(ScalarType::I32, 3);
        let six = b.bin(BinOp::Mul, ScalarType::I32, two, three);
        let seven = b.const_int(ScalarType::I32, 7);
        let result = b.bin(BinOp::Add, ScalarType::I32, six, seven);
        b.ret(Some(result));
        let mut f = b.finish();
        let stats = fold_function(&mut f);
        assert!(stats.folded >= 2);
        // The final add must now be a constant 13.
        let last_def = f
            .block(f.entry)
            .insts
            .iter()
            .find(|i| i.dst() == Some(result))
            .unwrap();
        assert!(matches!(
            last_def,
            Inst::Const {
                imm: Immediate::Int(13),
                ..
            }
        ));
    }

    #[test]
    fn folds_comparisons_and_casts() {
        let mut b = FunctionBuilder::new("f", &[], Some(Type::Scalar(ScalarType::I32)));
        let x = b.const_int(ScalarType::I32, 5);
        let y = b.const_int(ScalarType::I32, 9);
        let c = b.cmp(CmpOp::Lt, ScalarType::I32, x, y);
        let wide = b.cast(ScalarType::I32, ScalarType::I64, y);
        let _ = wide;
        b.ret(Some(c));
        let mut f = b.finish();
        fold_function(&mut f);
        let cdef = f
            .block(f.entry)
            .insts
            .iter()
            .find(|i| i.dst() == Some(c))
            .unwrap();
        assert!(matches!(
            cdef,
            Inst::Const {
                imm: Immediate::Int(1),
                ..
            }
        ));
        let wdef = f
            .block(f.entry)
            .insts
            .iter()
            .find(|i| i.dst() == Some(wide))
            .unwrap();
        assert!(matches!(
            wdef,
            Inst::Const {
                ty: ScalarType::I64,
                imm: Immediate::Int(9),
                ..
            }
        ));
    }

    #[test]
    fn propagates_single_def_copies() {
        let mut b = FunctionBuilder::new(
            "f",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let x = b.param(0);
        let copy = b.mov(ScalarType::I32, x);
        let y = b.bin(BinOp::Add, ScalarType::I32, copy, copy);
        b.ret(Some(y));
        let mut f = b.finish();
        let stats = fold_function(&mut f);
        assert!(stats.copies_propagated > 0);
        let ydef = f
            .block(f.entry)
            .insts
            .iter()
            .find(|i| i.dst() == Some(y))
            .unwrap();
        assert_eq!(ydef.uses(), vec![x, x]);
    }

    #[test]
    fn multi_def_registers_are_left_alone() {
        // A register assigned twice must not be treated as a constant.
        let mut b = FunctionBuilder::new("f", &[], Some(Type::Scalar(ScalarType::I32)));
        let t = b.new_vreg(ScalarType::I32);
        let one = b.const_int(ScalarType::I32, 1);
        let two = b.const_int(ScalarType::I32, 2);
        b.push(Inst::Move {
            dst: t,
            ty: ScalarType::I32,
            src: one,
        });
        b.push(Inst::Move {
            dst: t,
            ty: ScalarType::I32,
            src: two,
        });
        let r = b.bin(BinOp::Add, ScalarType::I32, t, t);
        b.ret(Some(r));
        let mut f = b.finish();
        fold_function(&mut f);
        let rdef = f
            .block(f.entry)
            .insts
            .iter()
            .find(|i| i.dst() == Some(r))
            .unwrap();
        assert!(
            matches!(rdef, Inst::Bin { .. }),
            "must not fold through a multi-def register"
        );
        assert_eq!(rdef.uses(), vec![t, t]);
        let _ = VReg(0);
    }

    #[test]
    fn division_by_constant_zero_is_not_folded() {
        let mut b = FunctionBuilder::new("f", &[], Some(Type::Scalar(ScalarType::I32)));
        let x = b.const_int(ScalarType::I32, 5);
        let z = b.const_int(ScalarType::I32, 0);
        let q = b.bin(BinOp::Div, ScalarType::I32, x, z);
        b.ret(Some(q));
        let mut f = b.finish();
        fold_function(&mut f);
        let qdef = f
            .block(f.entry)
            .insts
            .iter()
            .find(|i| i.dst() == Some(q))
            .unwrap();
        assert!(matches!(qdef, Inst::Bin { op: BinOp::Div, .. }));
    }
}
