//! Kernel-trait and module-level annotation pass.
//!
//! Beyond optimization-specific annotations (vectorization summaries, spill
//! orders), the paper proposes that annotations "express the hardware
//! requirements or characteristics of a code module" so that the runtime can
//! map computations onto the right core (Section 3). This pass derives those
//! characteristics from the bytecode.

use crate::defuse::DefUse;
use crate::indvars::{induction_variables, loop_bound};
use crate::loops::LoopForest;
use splitc_vbc::{keys, Function, Inst, KernelTraits, Module};

/// Derive [`KernelTraits`] for one function.
pub fn kernel_traits(f: &Function) -> KernelTraits {
    let mut arith = 0usize;
    let mut mem_bytes = 0u64;
    let mut branches = 0usize;
    let mut insts = 0usize;

    // Restrict the per-element estimates to the hottest (innermost) loop when
    // there is one; otherwise use the whole function.
    let forest = LoopForest::compute(f);
    let inner = forest.innermost();
    let in_scope = |b: splitc_vbc::BlockId| -> bool {
        if inner.is_empty() {
            true
        } else {
            inner.iter().any(|l| l.contains(b))
        }
    };

    for (block, inst) in f.iter_insts() {
        if !in_scope(block) {
            continue;
        }
        insts += 1;
        match inst {
            Inst::Bin { .. } | Inst::Un { .. } | Inst::VecBin { .. } | Inst::VecReduce { .. } => {
                arith += 1;
            }
            Inst::Load { ty, .. } | Inst::Store { ty, .. } => mem_bytes += ty.size_bytes(),
            Inst::VecLoad { elem, .. } | Inst::VecStore { elem, .. } => {
                // Per element of the portable vector, the traffic is one element.
                mem_bytes += elem.size_bytes();
            }
            Inst::Branch { .. } => branches += 1,
            _ => {}
        }
    }

    let _ = insts;
    KernelTraits {
        uses_fp: f.uses_float(),
        uses_vector: f.uses_vector_builtins(),
        control_intensive: branches >= 2 && branches * 2 >= arith.max(1),
        ops_per_element: arith as f64,
        bytes_per_element: mem_bytes as f64,
    }
}

/// Attach kernel traits and trip-count hints to every function, and mark the
/// module as offline-optimized. Returns the number of functions annotated.
pub fn annotate_module(m: &mut Module) -> usize {
    let mut count = 0;
    for f in m.functions_mut() {
        let traits = kernel_traits(f);
        f.annotations.set_kernel_traits(&traits);

        // Constant trip-count hint for the hottest loop, when derivable.
        let forest = LoopForest::compute(f);
        let du = DefUse::compute(f);
        if let Some(l) = forest.innermost().first() {
            let ivs = induction_variables(f, l, &du);
            if let Some(b) = loop_bound(f, l, &du, &ivs) {
                if let Some(c) = crate::indvars::constant_of(f, &du, b.bound) {
                    f.annotations.set(keys::TRIP_COUNT_HINT, c);
                }
            }
        }
        count += 1;
    }
    m.annotations.set(keys::OFFLINE_OPTIMIZED, true);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;

    #[test]
    fn traits_reflect_float_and_memory_usage() {
        let m = compile_source(
            r#"
            fn saxpy(n: i32, a: f32, x: *f32, y: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) { y[i] = a * x[i] + y[i]; }
            }
            "#,
            "t",
        )
        .unwrap();
        let t = kernel_traits(m.function("saxpy").unwrap());
        assert!(t.uses_fp);
        assert!(!t.uses_vector);
        assert!(!t.control_intensive);
        assert!(
            t.ops_per_element >= 2.0,
            "a multiply and an add: {}",
            t.ops_per_element
        );
        assert!(t.bytes_per_element >= 12.0, "two loads and a store of f32");
    }

    #[test]
    fn control_heavy_code_is_flagged() {
        let m = compile_source(
            r#"
            fn steps(x: i32) -> i32 {
                let r: i32 = 0;
                if (x > 0) { r = 1; } else { r = 2; }
                if (x > 10) { r = r + 1; } else { r = r - 1; }
                if (x > 100) { r = r * 2; } else { r = r * 3; }
                return r;
            }
            "#,
            "t",
        )
        .unwrap();
        let t = kernel_traits(m.function("steps").unwrap());
        assert!(t.control_intensive);
        assert!(!t.uses_fp);
    }

    #[test]
    fn module_annotation_adds_marker_and_hints() {
        let mut m = compile_source(
            "fn fill(x: *u8) { for (let i: i32 = 0; i < 256; i = i + 1) { x[i] = 1; } }",
            "t",
        )
        .unwrap();
        assert_eq!(annotate_module(&mut m), 1);
        assert_eq!(m.annotations.get_bool(keys::OFFLINE_OPTIMIZED), Some(true));
        let f = m.function("fill").unwrap();
        assert!(f.annotations.kernel_traits().is_some());
        assert_eq!(f.annotations.get_int(keys::TRIP_COUNT_HINT), Some(256));
    }
}
