//! Dominator computation (iterative algorithm of Cooper, Harvey and Kennedy).

use crate::cfg::{predecessors, reverse_postorder};
use splitc_vbc::{BlockId, Function};

/// Immediate-dominator tree of a function's reachable blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry maps to
    /// itself and unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Compute dominators for `f`.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let preds = predecessors(f);
        let mut order = vec![usize::MAX; f.blocks.len()];
        for (i, b) in rpo.iter().enumerate() {
            order[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
        idom[f.entry.index()] = Some(f.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while order[a.index()] > order[b.index()] {
                    a = idom[a.index()].expect("processed block has an idom");
                }
                while order[b.index()] > order[a.index()] {
                    b = idom[b.index()].expect("processed block has an idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators {
            idom,
            entry: f.entry,
        }
    }

    /// The immediate dominator of `b` (the entry's idom is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// `true` if `a` dominates `b` (every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom(cur) {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// `true` if block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom(b).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_vbc::{CmpOp, FunctionBuilder, ScalarType, Type};

    /// Diamond: entry -> {left, right} -> join, plus a loop join -> header.
    fn diamond_with_loop() -> Function {
        let mut b = FunctionBuilder::new("g", &[Type::Scalar(ScalarType::I32)], None);
        let n = b.param(0);
        let zero = b.const_int(ScalarType::I32, 0);
        let c = b.cmp(CmpOp::Gt, ScalarType::I32, n, zero);
        let left = b.new_block();
        let right = b.new_block();
        let join = b.new_block();
        let exit = b.new_block();
        b.branch(c, left, right);
        b.switch_to(left);
        b.jump(join);
        b.switch_to(right);
        b.jump(join);
        b.switch_to(join);
        let c2 = b.cmp(CmpOp::Lt, ScalarType::I32, zero, n);
        b.branch(c2, left, exit); // back edge join -> left makes left a loop header
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn entry_dominates_everything() {
        let f = diamond_with_loop();
        let dom = Dominators::compute(&f);
        for blk in &f.blocks {
            assert!(
                dom.dominates(f.entry, blk.id),
                "entry should dominate {}",
                blk.id
            );
        }
    }

    #[test]
    fn join_is_dominated_by_entry_not_by_branches() {
        let f = diamond_with_loop();
        let dom = Dominators::compute(&f);
        let left = BlockId(1);
        let right = BlockId(2);
        let join = BlockId(3);
        assert_eq!(dom.idom(join), Some(f.entry));
        assert!(!dom.dominates(left, join) || !dom.dominates(right, join));
        assert!(dom.dominates(join, BlockId(4)));
    }

    #[test]
    fn self_domination_and_unreachable_blocks() {
        let mut f = diamond_with_loop();
        let dead = f.new_block();
        f.block_mut(dead)
            .insts
            .push(splitc_vbc::Inst::Ret { value: None });
        let dom = Dominators::compute(&f);
        assert!(dom.dominates(BlockId(3), BlockId(3)));
        assert!(!dom.is_reachable(dead));
        assert!(dom.is_reachable(f.entry));
    }
}
