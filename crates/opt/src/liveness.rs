//! Backward liveness dataflow analysis and register-pressure measurement.
//!
//! Liveness is the basis of the split register allocation experiment (E3):
//! the offline step measures, for every program point, which virtual registers
//! are simultaneously live and ranks them for spilling.

use crate::cfg::{predecessors, reverse_postorder};
use splitc_vbc::{BlockId, Function, VReg};
use std::collections::BTreeSet;

/// Per-block live-in/live-out sets.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    live_in: Vec<BTreeSet<VReg>>,
    live_out: Vec<BTreeSet<VReg>>,
}

impl Liveness {
    /// Compute liveness for `f` with a standard backward fixed-point iteration.
    pub fn compute(f: &Function) -> Self {
        let nblocks = f.blocks.len();
        let mut use_set = vec![BTreeSet::new(); nblocks];
        let mut def_set = vec![BTreeSet::new(); nblocks];
        for block in &f.blocks {
            let b = block.id.index();
            for inst in &block.insts {
                for u in inst.uses() {
                    if !def_set[b].contains(&u) {
                        use_set[b].insert(u);
                    }
                }
                if let Some(d) = inst.dst() {
                    def_set[b].insert(d);
                }
            }
        }

        let mut live_in = vec![BTreeSet::new(); nblocks];
        let mut live_out = vec![BTreeSet::new(); nblocks];
        let rpo = reverse_postorder(f);
        let _ = predecessors(f);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().rev() {
                let bi = b.index();
                let mut out = BTreeSet::new();
                for s in f.block(b).successors() {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = use_set[bi].clone();
                for r in &out {
                    if !def_set[bi].contains(r) {
                        inn.insert(*r);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    pub fn live_in(&self, b: BlockId) -> &BTreeSet<VReg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    pub fn live_out(&self, b: BlockId) -> &BTreeSet<VReg> {
        &self.live_out[b.index()]
    }

    /// `true` if `r` is live across the boundary of any block (i.e. its live
    /// range spans more than a single basic block).
    pub fn crosses_blocks(&self, r: VReg) -> bool {
        self.live_in.iter().any(|s| s.contains(&r)) || self.live_out.iter().any(|s| s.contains(&r))
    }

    /// Maximum number of simultaneously-live registers over all program points
    /// (MAXLIVE), the quantity split register allocation reasons about.
    pub fn max_pressure(&self, f: &Function) -> u32 {
        let mut max = 0usize;
        for block in &f.blocks {
            let mut live = self.live_out[block.id.index()].clone();
            max = max.max(live.len());
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.dst() {
                    live.remove(&d);
                }
                for u in inst.uses() {
                    live.insert(u);
                }
                max = max.max(live.len());
            }
        }
        max as u32
    }

    /// Pressure (number of live registers) immediately before each instruction
    /// of block `b`, in instruction order.
    pub fn pressure_in_block(&self, f: &Function, b: BlockId) -> Vec<u32> {
        let block = f.block(b);
        let mut live = self.live_out[b.index()].clone();
        let mut rev = Vec::with_capacity(block.insts.len());
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.dst() {
                live.remove(&d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
            rev.push(live.len() as u32);
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_vbc::{BinOp, CmpOp, FunctionBuilder, Inst, ScalarType, Type};

    /// sum-of-0..n loop: the accumulator and induction variable are live across
    /// the loop; temporaries are not.
    fn loop_function() -> (Function, VReg, VReg) {
        let mut b = FunctionBuilder::new(
            "sum",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let n = b.param(0);
        let acc = b.new_vreg(ScalarType::I32);
        let i = b.new_vreg(ScalarType::I32);
        let z = b.const_int(ScalarType::I32, 0);
        b.push(Inst::Move {
            dst: acc,
            ty: ScalarType::I32,
            src: z,
        });
        b.push(Inst::Move {
            dst: i,
            ty: ScalarType::I32,
            src: z,
        });
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        let c = b.cmp(CmpOp::Lt, ScalarType::I32, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let t = b.bin(BinOp::Add, ScalarType::I32, acc, i);
        b.push(Inst::Move {
            dst: acc,
            ty: ScalarType::I32,
            src: t,
        });
        let one = b.const_int(ScalarType::I32, 1);
        let i2 = b.bin(BinOp::Add, ScalarType::I32, i, one);
        b.push(Inst::Move {
            dst: i,
            ty: ScalarType::I32,
            src: i2,
        });
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(acc));
        (b.finish(), acc, i)
    }

    #[test]
    fn loop_carried_values_are_live_at_the_header() {
        let (f, acc, i) = loop_function();
        let live = Liveness::compute(&f);
        let header = splitc_vbc::BlockId(1);
        assert!(live.live_in(header).contains(&acc));
        assert!(live.live_in(header).contains(&i));
        assert!(live.live_in(header).contains(&f.params[0].0));
        assert!(live.crosses_blocks(acc));
    }

    #[test]
    fn temporaries_do_not_escape_their_block() {
        let (f, _, _) = loop_function();
        let live = Liveness::compute(&f);
        let body = splitc_vbc::BlockId(2);
        // The temporary holding acc+i (defined and consumed inside the body)
        // must not be live out of the body.
        let du = crate::defuse::DefUse::compute(&f);
        for blk in &f.blocks {
            for inst in &blk.insts {
                if let Some(d) = inst.dst() {
                    if du.defs(d).len() == 1
                        && du.uses(d).iter().all(|p| p.block == blk.id)
                        && blk.id == body
                    {
                        assert!(
                            !live.live_out(body).contains(&d),
                            "{d} should die in the body"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pressure_is_positive_and_bounded_by_register_count() {
        let (f, _, _) = loop_function();
        let live = Liveness::compute(&f);
        let p = live.max_pressure(&f);
        assert!(p >= 3, "n, acc and i are simultaneously live: {p}");
        assert!(p <= f.num_vregs() as u32);
        let per_inst = live.pressure_in_block(&f, splitc_vbc::BlockId(2));
        assert_eq!(per_inst.len(), f.block(splitc_vbc::BlockId(2)).insts.len());
        assert!(per_inst.iter().all(|x| *x > 0));
    }

    #[test]
    fn straight_line_function_has_no_cross_block_liveness() {
        let mut b = FunctionBuilder::new("f", &[Type::Scalar(ScalarType::I32)], None);
        let x = b.param(0);
        let y = b.bin(BinOp::Add, ScalarType::I32, x, x);
        let _ = y;
        b.ret(None);
        let f = b.finish();
        let live = Liveness::compute(&f);
        // Parameters are used before any definition, so they are live into the
        // entry block; nothing is live out of the single block.
        assert_eq!(live.live_in(f.entry).len(), 1);
        assert!(live.live_in(f.entry).contains(&x));
        assert!(live.live_out(f.entry).is_empty());
    }
}
