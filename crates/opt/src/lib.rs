//! # splitc-opt — the offline optimizer
//!
//! The expensive half of split compilation (Cohen & Rohou, DAC 2010). This
//! crate analyzes and transforms the portable bytecode of [`splitc_vbc`]
//! *offline*, on the developer's machine, and records everything the online
//! compiler will need as bytecode annotations:
//!
//! * classical cleanups: [`fold_module`] (constant folding, copy propagation)
//!   and [`eliminate_dead_code_module`];
//! * loop analyses: [`LoopForest`], [`induction_variables`], [`loop_bound`];
//! * [`vectorize_module`] — automatic vectorization to the portable vector
//!   builtins (the Table 1 experiment);
//! * [`annotate_spill_orders`] — the offline half of split register
//!   allocation (the Section 4 experiment);
//! * [`annotate_module`] — kernel hardware-affinity traits for the
//!   heterogeneous runtime;
//! * [`optimize_module`] — the whole pipeline, with [`OptOptions`] selecting
//!   the baseline variants used by the experiments.
//!
//! # Example
//!
//! ```
//! use splitc_minic::compile_source;
//! use splitc_opt::{optimize_module, OptOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut module = compile_source(
//!     "fn dscal(n: i32, a: f32, x: *f32) {
//!          for (let i: i32 = 0; i < n; i = i + 1) { x[i] = a * x[i]; }
//!      }",
//!     "kernels",
//! )?;
//! let report = optimize_module(&mut module, &OptOptions::full());
//! assert_eq!(report.total_vectorized(), 1);
//! assert!(module.function("dscal").unwrap().uses_vector_builtins());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annotate;
pub mod cfg;
pub mod constfold;
pub mod dce;
pub mod defuse;
pub mod dom;
pub mod indvars;
pub mod liveness;
pub mod loops;
pub mod pipeline;
pub mod regalloc_split;
pub mod vectorize;

pub use annotate::{annotate_module, kernel_traits};
pub use constfold::{fold_function, fold_module, FoldStats};
pub use dce::{eliminate_dead_code, eliminate_dead_code_module};
pub use defuse::{DefUse, InstPos};
pub use dom::Dominators;
pub use indvars::{induction_variables, loop_bound, InductionVar, LoopBound};
pub use liveness::Liveness;
pub use loops::{Loop, LoopForest};
pub use pipeline::{optimize_module, OptOptions, OptReport};
pub use regalloc_split::{annotate_spill_orders, compute_spill_order, profiles, RegProfile};
pub use vectorize::{vectorize_function, vectorize_module, VectorizeReport};
