//! Induction-variable and loop-bound analysis.
//!
//! This is part of the "expensive analysis" the paper wants to run offline:
//! recognizing counted loops (`for (i = 0; i < n; i += step)`) in the generic
//! CFG so that the vectorizer can rewrite them.

use crate::defuse::{inst_at, DefUse, InstPos};
use crate::loops::Loop;
use splitc_vbc::{BinOp, CmpOp, Function, Immediate, Inst, ScalarType, VReg};

/// A basic induction variable of a loop: `iv = iv + step` once per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionVar {
    /// The induction variable's register.
    pub reg: VReg,
    /// The scalar type of the induction variable.
    pub ty: ScalarType,
    /// The (constant) per-iteration step.
    pub step: i64,
    /// Position of the `move iv, tmp` update inside the loop.
    pub update_pos: InstPos,
    /// Position of the `tmp = add iv, step` instruction inside the loop.
    pub add_pos: InstPos,
}

/// The exit condition of a counted loop: `iv <cmp> bound` tested in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBound {
    /// The induction variable being tested.
    pub iv: VReg,
    /// The comparison predicate (`Lt` or `Le`).
    pub cmp: CmpOp,
    /// The loop-invariant bound register.
    pub bound: VReg,
    /// Block entered when the loop continues.
    pub continue_block: splitc_vbc::BlockId,
    /// Block entered when the loop exits.
    pub exit_block: splitc_vbc::BlockId,
}

/// `true` if every definition of `r` lies outside `l` (parameters and
/// constants defined before the loop count as invariant).
pub fn is_loop_invariant(l: &Loop, du: &DefUse, r: VReg) -> bool {
    du.defs(r).iter().all(|pos| !l.contains(pos.block)) || du.defs(r).is_empty()
}

/// Extract the constant value of `r` if its single definition is a `const`.
pub fn constant_of(f: &Function, du: &DefUse, r: VReg) -> Option<i64> {
    let pos = du.single_def(r)?;
    match inst_at(f, pos) {
        Inst::Const {
            imm: Immediate::Int(v),
            ..
        } => Some(*v),
        _ => None,
    }
}

/// Find the basic induction variables of loop `l`.
///
/// An induction variable is a register whose only definition inside the loop
/// is `move iv, tmp` where `tmp = add iv, c` (or `add c, iv`) with `c` a
/// compile-time constant.
pub fn induction_variables(f: &Function, l: &Loop, du: &DefUse) -> Vec<InductionVar> {
    let mut out = Vec::new();
    for reg_idx in 0..f.num_vregs() {
        let reg = VReg(reg_idx as u32);
        let ty = match f.vreg_type(reg) {
            splitc_vbc::Type::Scalar(s) if s.is_int() && s != ScalarType::Ptr => s,
            _ => continue,
        };
        let defs_inside: Vec<InstPos> = du
            .defs(reg)
            .iter()
            .copied()
            .filter(|p| l.contains(p.block))
            .collect();
        let [update_pos] = defs_inside.as_slice() else {
            continue;
        };
        let Inst::Move { src, .. } = inst_at(f, *update_pos) else {
            continue;
        };
        let Some(add_pos) = du.single_def(*src) else {
            continue;
        };
        if !l.contains(add_pos.block) {
            continue;
        }
        let Inst::Bin {
            op: BinOp::Add,
            lhs,
            rhs,
            ..
        } = inst_at(f, add_pos)
        else {
            continue;
        };
        let step = if *lhs == reg {
            constant_of(f, du, *rhs)
        } else if *rhs == reg {
            constant_of(f, du, *lhs)
        } else {
            None
        };
        let Some(step) = step else { continue };
        // The induction variable must be initialized outside the loop.
        let has_outside_def = du.defs(reg).iter().any(|p| !l.contains(p.block));
        if !has_outside_def {
            continue;
        }
        out.push(InductionVar {
            reg,
            ty,
            step,
            update_pos: *update_pos,
            add_pos,
        });
    }
    out
}

/// Recognize the counted-loop exit condition in the header of `l`.
///
/// The supported shape (produced by the front end for `for`/`while` loops) is:
///
/// ```text
/// header:
///   %c = cmp.lt.<ty> %iv, %bound
///   branch %c, <body>, <exit>
/// ```
pub fn loop_bound(f: &Function, l: &Loop, du: &DefUse, ivs: &[InductionVar]) -> Option<LoopBound> {
    let header = f.block(l.header);
    let Some(Inst::Branch {
        cond,
        then_bb,
        else_bb,
    }) = header.terminator()
    else {
        return None;
    };
    let cond_pos = du.single_def(*cond)?;
    if cond_pos.block != l.header {
        return None;
    }
    let Inst::Cmp { op, lhs, rhs, .. } = inst_at(f, cond_pos) else {
        return None;
    };
    // Normalize so that the induction variable is on the left.
    let (iv_reg, bound, cmp) = if ivs.iter().any(|iv| iv.reg == *lhs) {
        (*lhs, *rhs, *op)
    } else if ivs.iter().any(|iv| iv.reg == *rhs) {
        (*rhs, *lhs, op.swapped())
    } else {
        return None;
    };
    if !matches!(cmp, CmpOp::Lt | CmpOp::Le) {
        return None;
    }
    // The bound must either be defined outside the loop or be a constant that
    // the vectorizer can re-materialize in its new preheader.
    if !is_loop_invariant(l, du, bound) && constant_of(f, du, bound).is_none() {
        return None;
    }
    let (continue_block, exit_block) = if l.contains(*then_bb) && !l.contains(*else_bb) {
        (*then_bb, *else_bb)
    } else {
        return None;
    };
    Some(LoopBound {
        iv: iv_reg,
        cmp,
        bound,
        continue_block,
        exit_block,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::LoopForest;
    use splitc_minic::compile_source;

    fn analyze(src: &str, func: &str) -> (Function, LoopForest) {
        let m = compile_source(src, "t").unwrap();
        let f = m.function(func).unwrap().clone();
        let forest = LoopForest::compute(&f);
        (f, forest)
    }

    #[test]
    fn recognizes_unit_stride_counted_loop() {
        let (f, forest) = analyze(
            "fn k(n: i32, x: *f32) { for (let i: i32 = 0; i < n; i = i + 1) { x[i] = x[i] + 1.0; } }",
            "k",
        );
        let l = forest.innermost()[0];
        let du = DefUse::compute(&f);
        let ivs = induction_variables(&f, l, &du);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 1);
        assert_eq!(ivs[0].ty, ScalarType::I32);
        let bound = loop_bound(&f, l, &du, &ivs).expect("counted loop");
        assert_eq!(bound.iv, ivs[0].reg);
        assert_eq!(bound.cmp, CmpOp::Lt);
        assert!(is_loop_invariant(l, &du, bound.bound));
    }

    #[test]
    fn recognizes_non_unit_steps() {
        let (f, forest) = analyze(
            "fn k(n: i32, x: *f32) { for (let i: i32 = 0; i < n; i = i + 4) { x[i] = 0.0; } }",
            "k",
        );
        let l = forest.innermost()[0];
        let du = DefUse::compute(&f);
        let ivs = induction_variables(&f, l, &du);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 4);
    }

    #[test]
    fn data_dependent_bound_or_update_is_rejected() {
        // i is updated by a loaded value: not a basic induction variable.
        let (f, forest) = analyze(
            "fn k(n: i32, x: *i32) { let i: i32 = 0; while (i < n) { i = i + x[i]; } }",
            "k",
        );
        let l = forest.innermost()[0];
        let du = DefUse::compute(&f);
        let ivs = induction_variables(&f, l, &du);
        assert!(ivs.is_empty());
        assert!(loop_bound(&f, l, &du, &ivs).is_none());
    }

    #[test]
    fn accumulator_is_not_reported_as_induction_variable() {
        let (f, forest) = analyze(
            r#"
            fn k(n: i32, x: *f32) -> f32 {
                let s: f32 = 0.0;
                for (let i: i32 = 0; i < n; i = i + 1) { s = s + x[i]; }
                return s;
            }
            "#,
            "k",
        );
        let l = forest.innermost()[0];
        let du = DefUse::compute(&f);
        let ivs = induction_variables(&f, l, &du);
        assert_eq!(ivs.len(), 1, "only i, not the f32 accumulator");
        assert_eq!(ivs[0].ty, ScalarType::I32);
    }
}
