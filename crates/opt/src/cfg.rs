//! Control-flow-graph utilities shared by the offline analyses.

use splitc_vbc::{BlockId, Function};

/// Reverse post-order of the reachable blocks of `f`, starting at the entry.
///
/// Blocks that are unreachable from the entry are not included.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut visited = vec![false; f.blocks.len()];
    let mut post = Vec::with_capacity(f.blocks.len());
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    visited[f.entry.index()] = true;
    while let Some((b, i)) = stack.pop() {
        let succs = f.block(b).successors();
        if i < succs.len() {
            stack.push((b, i + 1));
            let s = succs[i];
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
        }
    }
    post.reverse();
    post
}

/// The set of blocks reachable from the entry, as a boolean mask indexed by
/// [`BlockId::index`].
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut mask = vec![false; f.blocks.len()];
    for b in reverse_postorder(f) {
        mask[b.index()] = true;
    }
    mask
}

/// Predecessor lists restricted to reachable blocks.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let reach = reachable(f);
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for b in &f.blocks {
        if !reach[b.id.index()] {
            continue;
        }
        for s in b.successors() {
            preds[s.index()].push(b.id);
        }
    }
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_vbc::{CmpOp, FunctionBuilder, ScalarType, Type};

    /// entry -> header -> {body -> header, exit}
    fn loop_function() -> Function {
        let mut b = FunctionBuilder::new("loop", &[Type::Scalar(ScalarType::I32)], None);
        let n = b.param(0);
        let i = b.const_int(ScalarType::I32, 0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);
        b.switch_to(header);
        let c = b.cmp(CmpOp::Lt, ScalarType::I32, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let f = loop_function();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 4);
        // The header must come before both the body and the exit.
        let pos = |id: BlockId| rpo.iter().position(|b| *b == id).unwrap();
        assert!(pos(BlockId(1)) < pos(BlockId(2)));
        assert!(pos(BlockId(1)) < pos(BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_are_excluded() {
        let mut f = loop_function();
        // Add a block that nothing jumps to.
        let dead = f.new_block();
        f.block_mut(dead)
            .insts
            .push(splitc_vbc::Inst::Ret { value: None });
        let rpo = reverse_postorder(&f);
        assert!(!rpo.contains(&dead));
        assert!(!reachable(&f)[dead.index()]);
    }

    #[test]
    fn predecessors_match_successors() {
        let f = loop_function();
        let preds = predecessors(&f);
        // header (bb1) has the entry and the body as predecessors.
        assert_eq!(preds[1].len(), 2);
        assert!(preds[1].contains(&f.entry));
        assert!(preds[1].contains(&BlockId(2)));
        // exit (bb3) has only the header.
        assert_eq!(preds[3], vec![BlockId(1)]);
    }
}
