//! The offline optimization pipeline.
//!
//! [`optimize_module`] is what the paper calls the µProc-independent compiler's
//! optimization stage (Figure 1): it runs the expensive, target-independent
//! analyses once, on the developer's machine, and records their results as
//! annotations so that every JIT on every device can skip them.

use crate::annotate::annotate_module;
use crate::constfold::fold_module;
use crate::dce::eliminate_dead_code_module;
use crate::regalloc_split::annotate_spill_orders;
use crate::vectorize::vectorize_module;
use splitc_vbc::Module;
use std::collections::BTreeMap;

/// Which offline steps to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptOptions {
    /// Constant folding and copy propagation.
    pub fold: bool,
    /// Dead-code elimination.
    pub dce: bool,
    /// Automatic vectorization to portable builtins.
    pub vectorize: bool,
    /// Split register allocation (offline spill ordering).
    pub split_regalloc: bool,
    /// Kernel-trait annotations and module markers.
    pub annotate: bool,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            fold: true,
            dce: true,
            vectorize: true,
            split_regalloc: true,
            annotate: true,
        }
    }
}

impl OptOptions {
    /// Everything enabled (the full offline step of split compilation).
    pub fn full() -> Self {
        Self::default()
    }

    /// No offline optimization at all: the bytecode is shipped as the front
    /// end produced it. This is the "traditional deferred compilation"
    /// baseline of experiment E2.
    pub fn none() -> Self {
        OptOptions {
            fold: false,
            dce: false,
            vectorize: false,
            split_regalloc: false,
            annotate: false,
        }
    }

    /// Cleanups only, no vectorization and no annotations — bytecode that a
    /// conventional offline compiler would ship.
    pub fn scalar_only() -> Self {
        OptOptions {
            fold: true,
            dce: true,
            vectorize: false,
            split_regalloc: false,
            annotate: false,
        }
    }
}

/// Measured outcome of one offline optimization run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptReport {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Operands rewritten by copy propagation.
    pub copies_propagated: usize,
    /// Dead instructions removed.
    pub dce_removed: usize,
    /// Loops vectorized, per function.
    pub vectorized_loops: BTreeMap<String, usize>,
    /// Loops examined but rejected, per function, with reasons.
    pub rejections: BTreeMap<String, Vec<String>>,
    /// Functions that received a spill-order annotation.
    pub spill_orders: usize,
    /// Functions that received kernel-trait annotations.
    pub annotated: usize,
    /// Abstract offline work units (the "complexity" axis of Figure 1).
    pub offline_work: u64,
}

impl OptReport {
    /// Total number of vectorized loops across all functions.
    pub fn total_vectorized(&self) -> usize {
        self.vectorized_loops.values().sum()
    }
}

/// Run the offline pipeline over `m` according to `opts`.
pub fn optimize_module(m: &mut Module, opts: &OptOptions) -> OptReport {
    let mut report = OptReport::default();

    if opts.fold {
        let s = fold_module(m);
        report.folded += s.folded;
        report.copies_propagated += s.copies_propagated;
        report.offline_work += m.num_insts() as u64 * 2;
    }
    if opts.dce {
        report.dce_removed += eliminate_dead_code_module(m);
        report.offline_work += m.num_insts() as u64;
    }
    if opts.vectorize {
        let per_fn = vectorize_module(m);
        for (name, r) in per_fn {
            report.offline_work += r.analysis_work;
            if r.count() > 0 {
                report.vectorized_loops.insert(name.clone(), r.count());
            }
            if !r.rejected.is_empty() {
                report
                    .rejections
                    .insert(name, r.rejected.into_iter().map(|(_, why)| why).collect());
            }
        }
        // Clean up after the vectorizer: the cloned address chains leave some
        // dead scalar constants behind.
        if opts.fold {
            let s = fold_module(m);
            report.folded += s.folded;
            report.copies_propagated += s.copies_propagated;
        }
        if opts.dce {
            report.dce_removed += eliminate_dead_code_module(m);
        }
    }
    if opts.split_regalloc {
        report.spill_orders = annotate_spill_orders(m);
        report.offline_work += m.num_insts() as u64 * 3;
    }
    if opts.annotate {
        report.annotated = annotate_module(m);
        report.offline_work += m.num_insts() as u64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;
    use splitc_vbc::{keys, verify_module};

    const KERNELS: &str = r#"
        fn vecadd(n: i32, x: *f32, y: *f32, z: *f32) {
            for (let i: i32 = 0; i < n; i = i + 1) { z[i] = x[i] + y[i]; }
        }
        fn sum_u8(n: i32, x: *u8) -> u8 {
            let s: u8 = 0;
            for (let i: i32 = 0; i < n; i = i + 1) { s = s + x[i]; }
            return s;
        }
    "#;

    #[test]
    fn full_pipeline_vectorizes_annotates_and_verifies() {
        let mut m = compile_source(KERNELS, "t").unwrap();
        let report = optimize_module(&mut m, &OptOptions::full());
        assert_eq!(report.total_vectorized(), 2);
        assert_eq!(report.spill_orders, 2);
        assert_eq!(report.annotated, 2);
        assert!(report.offline_work > 0);
        assert_eq!(m.annotations.get_bool(keys::OFFLINE_OPTIMIZED), Some(true));
        verify_module(&m).unwrap();
    }

    #[test]
    fn disabled_pipeline_leaves_the_module_untouched() {
        let mut m = compile_source(KERNELS, "t").unwrap();
        let original = m.clone();
        let report = optimize_module(&mut m, &OptOptions::none());
        assert_eq!(report.total_vectorized(), 0);
        assert_eq!(report.offline_work, 0);
        assert_eq!(m, original);
    }

    #[test]
    fn scalar_only_cleans_up_without_vector_builtins() {
        let mut m = compile_source(KERNELS, "t").unwrap();
        let report = optimize_module(&mut m, &OptOptions::scalar_only());
        assert_eq!(report.total_vectorized(), 0);
        assert!(m.functions().iter().all(|f| !f.uses_vector_builtins()));
        assert!(report.offline_work > 0);
        verify_module(&m).unwrap();
    }

    #[test]
    fn full_costs_more_offline_work_than_scalar_only() {
        let mut a = compile_source(KERNELS, "t").unwrap();
        let mut b = compile_source(KERNELS, "t").unwrap();
        let full = optimize_module(&mut a, &OptOptions::full());
        let scalar = optimize_module(&mut b, &OptOptions::scalar_only());
        assert!(
            full.offline_work > scalar.offline_work,
            "split compilation moves work offline: {} vs {}",
            full.offline_work,
            scalar.offline_work
        );
    }
}
