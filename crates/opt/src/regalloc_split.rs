//! Offline half of split register allocation.
//!
//! Following the split register allocation the paper highlights in Section 4
//! (Diouf et al.), the offline compiler performs the *allocation* decision —
//! which values deserve registers — and encodes it as a compact, portable
//! annotation ([`SpillOrder`]). The online compiler, which knows the actual
//! number of physical registers, then performs *assignment* in linear time by
//! keeping the highest-ranked values and spilling the rest (see
//! `splitc_jit::regassign`).

use crate::defuse::DefUse;
use crate::liveness::Liveness;
use crate::loops::LoopForest;
use splitc_vbc::{Function, Module, SpillOrder, VReg};

/// Per-register profitability data computed offline.
#[derive(Debug, Clone, PartialEq)]
pub struct RegProfile {
    /// The register.
    pub reg: VReg,
    /// Loop-depth-weighted count of uses plus definitions (an estimate of
    /// dynamic accesses: an access at loop depth `d` counts as `10^d`).
    pub accesses: f64,
    /// Number of basic blocks across which the value is live.
    pub span_blocks: usize,
    /// `accesses / span` — the keep-profitability score used for ranking.
    pub score: f64,
}

/// Compute offline spill-ordering information for one function.
///
/// Registers are ranked by how profitable they are to keep in a physical
/// register: frequently-accessed, short-lived values first. The ranking is
/// *portable*: it does not depend on the number of physical registers of any
/// particular target, which is only known to the online compiler.
pub fn compute_spill_order(f: &Function) -> SpillOrder {
    profiles(f)
        .into_iter()
        .map(|p| p.reg.0)
        .collect::<Vec<_>>()
        .pipe(|keep_order| SpillOrder {
            keep_order,
            max_pressure: Liveness::compute(f).max_pressure(f),
        })
}

// A tiny local `pipe` helper keeps `compute_spill_order` readable without
// pulling in an external crate.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

/// The per-register profiles, sorted from most to least profitable to keep.
///
/// Only values whose live range crosses a basic-block boundary are profiled:
/// block-local temporaries are handled by the online scratch allocator and do
/// not need a portable ranking, which keeps the annotation compact (the paper
/// insists on "compact, portable annotations").
pub fn profiles(f: &Function) -> Vec<RegProfile> {
    let du = DefUse::compute(f);
    let live = Liveness::compute(f);
    let forest = LoopForest::compute(f);
    // An access executed inside a loop is worth an order of magnitude more per
    // nesting level (the classic static spill-cost estimate).
    let depth_weight = |block: splitc_vbc::BlockId| -> f64 {
        let depth = forest
            .loops
            .iter()
            .filter(|l| l.contains(block))
            .count()
            .min(3);
        10f64.powi(depth as i32)
    };
    let mut out: Vec<RegProfile> = (0..f.num_vregs())
        .map(|i| {
            let reg = VReg(i as u32);
            let accesses: f64 = du
                .uses(reg)
                .iter()
                .chain(du.defs(reg).iter())
                .map(|pos| depth_weight(pos.block))
                .sum();
            let span_blocks = (0..f.blocks.len())
                .filter(|b| {
                    let id = splitc_vbc::BlockId(*b as u32);
                    live.live_in(id).contains(&reg) || live.live_out(id).contains(&reg)
                })
                .count();
            RegProfile {
                reg,
                accesses,
                span_blocks: span_blocks.max(1),
                score: accesses / span_blocks.max(1) as f64,
            }
        })
        .filter(|p| {
            p.accesses > 0.0
                && (live.crosses_blocks(p.reg) || f.params.iter().any(|(r, _)| *r == p.reg))
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.reg.0.cmp(&b.reg.0))
    });
    out
}

/// Attach a [`SpillOrder`] annotation to every function of `m`.
///
/// Returns the number of functions annotated.
pub fn annotate_spill_orders(m: &mut Module) -> usize {
    let mut n = 0;
    for f in m.functions_mut() {
        let order = compute_spill_order(f);
        f.annotations.set_spill_order(&order);
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;

    fn pressure_kernel() -> Function {
        let m = compile_source(
            r#"
            fn poly8(n: i32, x: *f32, y: *f32) {
                let c0: f32 = 1.0; let c1: f32 = 2.0; let c2: f32 = 3.0; let c3: f32 = 4.0;
                let c4: f32 = 5.0; let c5: f32 = 6.0; let c6: f32 = 7.0; let c7: f32 = 8.0;
                for (let i: i32 = 0; i < n; i = i + 1) {
                    let v: f32 = x[i];
                    y[i] = ((((((v * c7 + c6) * v + c5) * v + c4) * v + c3) * v + c2) * v + c1) * v + c0;
                }
            }
            "#,
            "t",
        )
        .unwrap();
        m.function("poly8").unwrap().clone()
    }

    #[test]
    fn every_live_register_is_ranked_exactly_once() {
        let f = pressure_kernel();
        let order = compute_spill_order(&f);
        let mut seen = std::collections::BTreeSet::new();
        for r in &order.keep_order {
            assert!(seen.insert(*r), "register {r} ranked twice");
            assert!((*r as usize) < f.num_vregs());
        }
        assert!(
            order.max_pressure >= 10,
            "the polynomial kernel is register-hungry"
        );
    }

    #[test]
    fn hot_loop_values_rank_above_cold_constants() {
        let f = pressure_kernel();
        let profs = profiles(&f);
        // The induction variable and the loop bound live across blocks but are
        // accessed often; single-use temporaries still rank high because their
        // span is one block. Every profile must have a positive score.
        assert!(profs.iter().all(|p| p.score > 0.0));
        // Scores are sorted non-increasingly.
        for w in profs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn annotation_round_trips_through_the_module() {
        let mut m =
            compile_source("fn f(a: i32, b: i32) -> i32 { return a * b + a - b; }", "t").unwrap();
        assert_eq!(annotate_spill_orders(&mut m), 1);
        let stored = m.function("f").unwrap().annotations.spill_order().unwrap();
        assert_eq!(stored, compute_spill_order(m.function("f").unwrap()));
        assert!(!stored.keep_order.is_empty());
    }
}
