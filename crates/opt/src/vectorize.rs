//! Offline automatic vectorization to portable vector builtins.
//!
//! This pass reproduces the split vectorization of Section 4 / Table 1 of the
//! paper: the *offline* compiler performs the expensive work (loop and
//! induction-variable recognition, dependence checking, reduction detection)
//! and rewrites counted loops into loops over the portable vector builtins of
//! the bytecode, keeping the original scalar loop as the epilogue for the
//! remainder iterations. The *online* compiler then either maps the builtins
//! to the target's SIMD unit or scalarizes them — without re-doing any of the
//! analysis.
//!
//! ## Supported shape
//!
//! Innermost counted loops `for (i = init; i < n; i = i + 1)` whose body is a
//! single straight-line block containing:
//!
//! * contiguous loads/stores `p[i]` with a single element type,
//! * element-wise arithmetic (`+ - * / min max` and integer bitwise ops),
//! * reductions `acc = acc ⊕ expr` with `⊕ ∈ {+, min, max}`.
//!
//! Distinct pointer parameters are assumed not to alias (the paper relies on
//! offline whole-program analysis to establish exactly this kind of fact);
//! accesses through the *same* pointer are only accepted when they address the
//! same element `p[i]`, i.e. an in-place update.

use crate::defuse::{inst_at, DefUse, InstPos};
use crate::indvars::{
    constant_of, induction_variables, is_loop_invariant, loop_bound, InductionVar, LoopBound,
};
use crate::loops::{Loop, LoopForest};
use splitc_vbc::{
    BinOp, BlockId, CmpOp, Function, Immediate, Inst, Module, ReduceOp, ScalarType, Type, VReg,
    VectorizedLoop,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Outcome of vectorizing one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorizeReport {
    /// Headers of loops that were vectorized, with their element type.
    pub vectorized: Vec<(BlockId, ScalarType, bool)>,
    /// Headers of loops that were examined but rejected, with the reason.
    pub rejected: Vec<(BlockId, String)>,
    /// Abstract work units spent on analysis (used by the split-compilation
    /// cost experiment E2).
    pub analysis_work: u64,
}

impl VectorizeReport {
    /// Number of loops vectorized.
    pub fn count(&self) -> usize {
        self.vectorized.len()
    }
}

/// A contiguous, unit-stride memory access `base[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AffineAccess {
    base: VReg,
    elem: ScalarType,
    is_store: bool,
    pos: InstPos,
}

/// A reduction `acc = acc ⊕ other` recognized in the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Reduction {
    acc: VReg,
    op: BinOp,
    elem: ScalarType,
    bin_pos: InstPos,
    move_pos: InstPos,
    other: VReg,
}

/// Everything needed to emit the vector version of one loop.
#[derive(Debug, Clone)]
struct Plan {
    header: BlockId,
    body: BlockId,
    preheader: BlockId,
    iv: InductionVar,
    bound: LoopBound,
    bound_const: Option<i64>,
    elem: ScalarType,
    reductions: Vec<Reduction>,
    address_slice: BTreeSet<usize>,
    skip: BTreeSet<usize>,
    trip_count_hint: Option<u64>,
}

/// Vectorize every eligible innermost loop of `f`.
pub fn vectorize_function(f: &mut Function) -> VectorizeReport {
    let mut report = VectorizeReport::default();
    let mut handled: HashSet<BlockId> = HashSet::new();
    loop {
        let forest = LoopForest::compute(f);
        let du = DefUse::compute(f);
        report.analysis_work += f.num_insts() as u64 * 2;
        let mut plan: Option<Plan> = None;
        for l in forest.innermost() {
            if handled.contains(&l.header) {
                continue;
            }
            report.analysis_work += l.blocks.len() as u64 + f.block(l.header).insts.len() as u64;
            match analyze_loop(f, l, &du, &mut report.analysis_work) {
                Ok(p) => {
                    plan = Some(p);
                    break;
                }
                Err(reason) => {
                    handled.insert(l.header);
                    report.rejected.push((l.header, reason));
                }
            }
        }
        let Some(plan) = plan else {
            break;
        };
        handled.insert(plan.header);
        let vec_body = transform(f, &plan);
        handled.insert(vec_body.1);
        report
            .vectorized
            .push((plan.header, plan.elem, !plan.reductions.is_empty()));

        let mut summary = f.annotations.vectorization().unwrap_or_default();
        summary.loops.push(VectorizedLoop {
            body_block: vec_body.0 .0,
            elem: plan.elem,
            reduction: !plan.reductions.is_empty(),
            trip_count_hint: plan.trip_count_hint,
        });
        f.annotations.set_vectorization(&summary);
    }
    report
}

/// Vectorize every function of a module; returns per-function reports.
pub fn vectorize_module(m: &mut Module) -> BTreeMap<String, VectorizeReport> {
    let mut out = BTreeMap::new();
    for f in m.functions_mut() {
        let name = f.name.clone();
        out.insert(name, vectorize_function(f));
    }
    out
}

fn vectorizable_value_op(op: BinOp, elem: ScalarType) -> bool {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max => true,
        BinOp::And | BinOp::Or | BinOp::Xor => elem.is_int(),
        BinOp::Rem | BinOp::Shl | BinOp::Shr => false,
    }
}

fn reduce_op(op: BinOp) -> Option<ReduceOp> {
    match op {
        BinOp::Add => Some(ReduceOp::Add),
        BinOp::Min => Some(ReduceOp::Min),
        BinOp::Max => Some(ReduceOp::Max),
        _ => None,
    }
}

fn identity_imm(op: BinOp, elem: ScalarType) -> Immediate {
    match (op, elem.is_float()) {
        (BinOp::Add, true) => Immediate::Float(0.0),
        (BinOp::Add, false) => Immediate::Int(0),
        (BinOp::Max, true) => Immediate::Float(f64::NEG_INFINITY),
        (BinOp::Max, false) => {
            if elem.is_unsigned() {
                Immediate::Int(0)
            } else {
                Immediate::Int(match elem {
                    ScalarType::I8 => i64::from(i8::MIN),
                    ScalarType::I16 => i64::from(i16::MIN),
                    ScalarType::I32 => i64::from(i32::MIN),
                    _ => i64::MIN,
                })
            }
        }
        (BinOp::Min, true) => Immediate::Float(f64::INFINITY),
        (BinOp::Min, false) => Immediate::Int(match elem {
            ScalarType::U8 => 0xff,
            ScalarType::U16 => 0xffff,
            ScalarType::U32 => 0xffff_ffff,
            ScalarType::I8 => i64::from(i8::MAX),
            ScalarType::I16 => i64::from(i16::MAX),
            ScalarType::I32 => i64::from(i32::MAX),
            _ => i64::MAX,
        }),
        _ => Immediate::Int(0),
    }
}

/// Recognize the unit-stride address chain produced by the front end:
/// `add.ptr base, cast.ptr(mul.i64 cast.i64(iv), sizeof(elem))`.
fn analyze_address(
    f: &Function,
    l: &Loop,
    du: &DefUse,
    addr: VReg,
    elem: ScalarType,
    iv: &InductionVar,
) -> Result<(VReg, Vec<InstPos>), String> {
    let mut slice = Vec::new();
    let add_pos = du
        .single_def(addr)
        .filter(|p| l.contains(p.block))
        .ok_or("address is not computed inside the loop")?;
    slice.push(add_pos);
    let Inst::Bin {
        op: BinOp::Add,
        ty: ScalarType::Ptr,
        lhs,
        rhs,
        ..
    } = inst_at(f, add_pos)
    else {
        return Err("address is not base+offset".into());
    };
    // One side is the loop-invariant base, the other the scaled index.
    let (base, scaled_ptr) = if is_loop_invariant(l, du, *lhs) {
        (*lhs, *rhs)
    } else if is_loop_invariant(l, du, *rhs) {
        (*rhs, *lhs)
    } else {
        return Err("no loop-invariant base pointer".into());
    };
    let cast_pos = du
        .single_def(scaled_ptr)
        .filter(|p| l.contains(p.block))
        .ok_or("scaled index not computed in the loop")?;
    slice.push(cast_pos);
    let Inst::Cast { src: scaled, .. } = inst_at(f, cast_pos) else {
        return Err("scaled index is not an integer-to-pointer cast".into());
    };
    let mul_pos = du
        .single_def(*scaled)
        .filter(|p| l.contains(p.block))
        .ok_or("index scaling not computed in the loop")?;
    slice.push(mul_pos);
    let Inst::Bin {
        op: BinOp::Mul,
        lhs: ml,
        rhs: mr,
        ..
    } = inst_at(f, mul_pos)
    else {
        return Err("index is not scaled by a multiplication".into());
    };
    let (idx, scale_reg, scale) = if let Some(c) = constant_of(f, du, *mr) {
        (*ml, *mr, c)
    } else if let Some(c) = constant_of(f, du, *ml) {
        (*mr, *ml, c)
    } else {
        return Err("non-constant access stride".into());
    };
    if scale != elem.size_bytes() as i64 {
        return Err(format!(
            "access stride {scale} does not match the element size {}",
            elem.size_bytes()
        ));
    }
    // The constant feeding the scale may itself live inside the loop body (the
    // front end materializes it next to the access); it must then be cloned
    // into the vector body along with the rest of the address chain.
    if let Some(scale_pos) = du.single_def(scale_reg) {
        if l.contains(scale_pos.block) {
            slice.push(scale_pos);
        }
    }
    // The index must be the induction variable, possibly widened by a cast.
    let idx_root = if idx == iv.reg {
        idx
    } else {
        let widen_pos = du
            .single_def(idx)
            .filter(|p| l.contains(p.block))
            .ok_or("index is not the induction variable")?;
        slice.push(widen_pos);
        let Inst::Cast { src, .. } = inst_at(f, widen_pos) else {
            return Err("index is not the induction variable".into());
        };
        *src
    };
    if idx_root != iv.reg {
        return Err("index is not the loop induction variable".into());
    }
    Ok((base, slice))
}

fn analyze_loop(f: &Function, l: &Loop, du: &DefUse, work: &mut u64) -> Result<Plan, String> {
    // Structural shape: exactly header + one body block.
    if l.blocks.len() != 2 {
        return Err(format!("loop has {} blocks, expected 2", l.blocks.len()));
    }
    let body = *l
        .blocks
        .iter()
        .find(|b| **b != l.header)
        .expect("two-block loop has a body");
    if l.latches != vec![body] {
        return Err("loop body is not the single latch".into());
    }
    let preheader = l.preheader(f).ok_or("loop has no unique preheader")?;

    let ivs = induction_variables(f, l, du);
    *work += f.block(body).insts.len() as u64 * 4;
    let bound = loop_bound(f, l, du, &ivs).ok_or("not a counted loop")?;
    let iv = *ivs
        .iter()
        .find(|iv| iv.reg == bound.iv)
        .ok_or("loop bound does not test the induction variable")?;
    if iv.step != 1 {
        return Err(format!(
            "induction step is {}, only unit stride is vectorized",
            iv.step
        ));
    }
    if bound.cmp != CmpOp::Lt {
        return Err("only `<` loop bounds are vectorized".into());
    }
    // The bound must be usable in the new preheader: either defined outside
    // the loop or a constant we can re-materialize.
    let bound_const = constant_of(f, du, bound.bound);
    if !is_loop_invariant(l, du, bound.bound) && bound_const.is_none() {
        return Err("loop bound is not loop-invariant".into());
    }

    // The induction variable must not be used by value computations other than
    // the bound test, its own update and address computations (checked via the
    // address slice below); otherwise the scalar value `i` would be needed per
    // lane (e.g. `x[i] = i`), which the portable builtins cannot express.
    let body_insts = &f.block(body).insts;
    *work += body_insts.len() as u64 * 8;

    // Identify the induction-variable update chain.
    let mut skip: BTreeSet<usize> = BTreeSet::new();
    if iv.update_pos.block != body || iv.add_pos.block != body {
        return Err("induction variable is not updated in the loop body".into());
    }
    skip.insert(iv.update_pos.index);
    skip.insert(iv.add_pos.index);

    // Recognize reductions.
    let mut reductions: Vec<Reduction> = Vec::new();
    for (index, inst) in body_insts.iter().enumerate() {
        let Inst::Move { dst: acc, src, .. } = inst else {
            continue;
        };
        // Accumulator: defined outside the loop, updated exactly once inside.
        let defs_inside: Vec<_> = du
            .defs(*acc)
            .iter()
            .filter(|p| l.contains(p.block))
            .collect();
        if defs_inside.len() != 1 || !du.defs(*acc).iter().any(|p| !l.contains(p.block)) {
            continue;
        }
        let Some(bin_pos) = du.single_def(*src).filter(|p| p.block == body) else {
            continue;
        };
        let Inst::Bin {
            op, ty, lhs, rhs, ..
        } = inst_at(f, bin_pos)
        else {
            continue;
        };
        if reduce_op(*op).is_none() {
            continue;
        }
        let other = if *lhs == *acc {
            *rhs
        } else if *rhs == *acc {
            *lhs
        } else {
            continue;
        };
        // All in-loop uses of the accumulator must be in the reduction chain.
        let ok_uses = du
            .uses(*acc)
            .iter()
            .filter(|p| l.contains(p.block))
            .all(|p| *p == bin_pos);
        if !ok_uses {
            continue;
        }
        reductions.push(Reduction {
            acc: *acc,
            op: *op,
            elem: *ty,
            bin_pos,
            move_pos: InstPos { block: body, index },
            other,
        });
    }
    for r in &reductions {
        skip.insert(r.bin_pos.index);
        skip.insert(r.move_pos.index);
    }

    // Memory accesses and the address slice.
    let mut accesses: Vec<AffineAccess> = Vec::new();
    let mut address_slice: BTreeSet<usize> = BTreeSet::new();
    let mut elem_types: BTreeSet<ScalarType> = BTreeSet::new();
    for (index, inst) in body_insts.iter().enumerate() {
        let pos = InstPos { block: body, index };
        match inst {
            Inst::Load {
                ty, addr, offset, ..
            }
            | Inst::Store {
                ty, addr, offset, ..
            } => {
                if *offset != 0 {
                    return Err("displaced accesses are not vectorized".into());
                }
                let (base, slice) = analyze_address(f, l, du, *addr, *ty, &iv)?;
                for p in slice {
                    if p.block == body {
                        address_slice.insert(p.index);
                    } else {
                        return Err("address computed outside the loop body".into());
                    }
                }
                elem_types.insert(*ty);
                accesses.push(AffineAccess {
                    base,
                    elem: *ty,
                    is_store: matches!(inst, Inst::Store { .. }),
                    pos,
                });
            }
            _ => {}
        }
    }

    // Classify the remaining instructions.
    let mut local_defs: HashSet<VReg> = HashSet::new();
    for (index, inst) in body_insts.iter().enumerate() {
        if skip.contains(&index) || address_slice.contains(&index) {
            continue;
        }
        let pos = InstPos { block: body, index };
        match inst {
            Inst::Load { .. } | Inst::Store { .. } => {}
            Inst::Const { .. } => {}
            Inst::Bin { op, ty, dst, .. } => {
                if !vectorizable_value_op(*op, *ty) {
                    return Err(format!("operator `{op}` cannot be vectorized"));
                }
                elem_types.insert(*ty);
                local_defs.insert(*dst);
            }
            Inst::Move { dst, .. } => {
                // A per-iteration local variable: every definition and use must
                // stay inside the body, otherwise it is a scalar live-out.
                let all_inside = du
                    .defs(*dst)
                    .iter()
                    .chain(du.uses(*dst))
                    .all(|p| p.block == body);
                if !all_inside {
                    return Err("scalar value is live out of the loop".into());
                }
                local_defs.insert(*dst);
            }
            Inst::Jump { target } if *target == l.header && index + 1 == body_insts.len() => {}
            other => {
                return Err(format!(
                    "instruction `{}` cannot be vectorized",
                    splitc_vbc::format_inst(other)
                ));
            }
        }
        let _ = pos;
    }

    // The induction variable must not feed value computations.
    for (index, inst) in body_insts.iter().enumerate() {
        if skip.contains(&index) || address_slice.contains(&index) {
            continue;
        }
        if !matches!(inst, Inst::Jump { .. }) && inst.uses().contains(&iv.reg) {
            return Err("the induction variable is used as a value inside the loop".into());
        }
    }

    // Element type consistency.
    if elem_types.len() != 1 {
        return Err(format!(
            "mixed element types {elem_types:?} in one loop are not vectorized"
        ));
    }
    let elem = *elem_types.iter().next().expect("one element type");
    if elem == ScalarType::Ptr {
        return Err("pointer-typed elements are not vectorized".into());
    }
    for r in &reductions {
        if r.elem != elem {
            return Err("reduction element type differs from the loop element type".into());
        }
    }

    // Dependence test: loads and stores through the same base pointer always
    // address `base[i]` here (unit stride, same index), which is safe; distinct
    // bases are assumed not to alias (established offline, as in the paper).
    let stores: Vec<_> = accesses.iter().filter(|a| a.is_store).collect();
    for s in &stores {
        for a in &accesses {
            if a.pos != s.pos && a.base == s.base && a.elem != s.elem {
                return Err("conflicting accesses through one pointer".into());
            }
        }
    }

    let trip_count_hint = bound_const.and_then(|n| u64::try_from(n).ok());
    Ok(Plan {
        header: l.header,
        body,
        preheader,
        iv,
        bound,
        bound_const,
        elem,
        reductions,
        address_slice,
        skip,
        trip_count_hint,
    })
}

/// Emit the vector loop described by `plan`; returns `(vec_body, vec_header)`.
fn transform(f: &mut Function, plan: &Plan) -> (BlockId, BlockId) {
    let elem = plan.elem;
    let ivty = plan.iv.ty;
    let vec_pre = f.new_block();
    let vec_header = f.new_block();
    let vec_body = f.new_block();
    let merge = f.new_block();

    // --- Redirect the preheader to the vector preheader. ---
    let pre_term = f
        .block_mut(plan.preheader)
        .insts
        .last_mut()
        .expect("preheader has a terminator");
    match pre_term {
        Inst::Jump { target } if *target == plan.header => *target = vec_pre,
        Inst::Branch {
            then_bb, else_bb, ..
        } => {
            if *then_bb == plan.header {
                *then_bb = vec_pre;
            }
            if *else_bb == plan.header {
                *else_bb = vec_pre;
            }
        }
        _ => {}
    }

    // --- Vector preheader: lane count, vector trip count, splats, accumulators. ---
    let mut pre: Vec<Inst> = Vec::new();
    let vl64 = f.new_vreg(Type::Scalar(ScalarType::I64));
    pre.push(Inst::VecWidth { dst: vl64, elem });
    let vl = if ivty == ScalarType::I64 {
        vl64
    } else {
        let r = f.new_vreg(Type::Scalar(ivty));
        pre.push(Inst::Cast {
            dst: r,
            to: ivty,
            src: vl64,
            from: ScalarType::I64,
        });
        r
    };
    // Re-materialize a constant bound if needed, so that the bound register we
    // use is available in the new preheader.
    let bound_reg = if let Some(c) = plan.bound_const {
        let r = f.new_vreg(Type::Scalar(ivty));
        pre.push(Inst::Const {
            dst: r,
            ty: ivty,
            imm: Immediate::Int(c),
        });
        r
    } else {
        plan.bound.bound
    };
    let rem = f.new_vreg(Type::Scalar(ivty));
    pre.push(Inst::Bin {
        op: BinOp::Rem,
        ty: ivty,
        dst: rem,
        lhs: bound_reg,
        rhs: vl,
    });
    let limit = f.new_vreg(Type::Scalar(ivty));
    pre.push(Inst::Bin {
        op: BinOp::Sub,
        ty: ivty,
        dst: limit,
        lhs: bound_reg,
        rhs: rem,
    });

    // Splats of loop-invariant scalars and of in-body constants used by value ops.
    let body_insts: Vec<Inst> = f.block(plan.body).insts.clone();
    let mut const_in_body: HashMap<VReg, Immediate> = HashMap::new();
    for inst in &body_insts {
        if let Inst::Const { dst, imm, .. } = inst {
            const_in_body.insert(*dst, *imm);
        }
    }
    let mut splats: HashMap<VReg, VReg> = HashMap::new();
    let mut needs_splat: Vec<VReg> = Vec::new();
    for (index, inst) in body_insts.iter().enumerate() {
        if plan.skip.contains(&index) || plan.address_slice.contains(&index) {
            continue;
        }
        let value_operands: Vec<VReg> = match inst {
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Store { value, .. } => vec![*value],
            Inst::Move { src, .. } => vec![*src],
            _ => Vec::new(),
        };
        for r in value_operands {
            let defined_in_body = body_insts.iter().enumerate().any(|(i, bi)| {
                !plan.address_slice.contains(&i) && bi.dst() == Some(r) && !plan.skip.contains(&i)
            });
            let is_const = const_in_body.contains_key(&r);
            if (!defined_in_body || is_const) && !splats.contains_key(&r) && r != plan.iv.reg {
                needs_splat.push(r);
                splats.insert(r, VReg(u32::MAX)); // placeholder, filled below
            }
        }
    }
    // Reduction sources may also be loop-invariant (degenerate but legal).
    for red in &plan.reductions {
        let defined_in_body = body_insts.iter().enumerate().any(|(i, bi)| {
            !plan.address_slice.contains(&i)
                && bi.dst() == Some(red.other)
                && !plan.skip.contains(&i)
        });
        if !defined_in_body && !splats.contains_key(&red.other) {
            needs_splat.push(red.other);
            splats.insert(red.other, VReg(u32::MAX));
        }
    }
    for r in needs_splat {
        let src = if let Some(imm) = const_in_body.get(&r) {
            let c = f.new_vreg(Type::Scalar(elem));
            pre.push(Inst::Const {
                dst: c,
                ty: elem,
                imm: *imm,
            });
            c
        } else {
            r
        };
        let v = f.new_vreg(Type::Vector(elem));
        pre.push(Inst::VecSplat { dst: v, elem, src });
        splats.insert(r, v);
    }

    // Vector accumulators.
    let mut vaccs: HashMap<VReg, VReg> = HashMap::new();
    for red in &plan.reductions {
        let ident = f.new_vreg(Type::Scalar(elem));
        pre.push(Inst::Const {
            dst: ident,
            ty: elem,
            imm: identity_imm(red.op, elem),
        });
        let vacc = f.new_vreg(Type::Vector(elem));
        pre.push(Inst::VecSplat {
            dst: vacc,
            elem,
            src: ident,
        });
        vaccs.insert(red.acc, vacc);
    }
    pre.push(Inst::Jump { target: vec_header });
    f.block_mut(vec_pre).insts = pre;

    // --- Vector loop header. ---
    let cond = f.new_vreg(Type::Scalar(ScalarType::I32));
    f.block_mut(vec_header).insts = vec![
        Inst::Cmp {
            op: CmpOp::Lt,
            ty: ivty,
            dst: cond,
            lhs: plan.iv.reg,
            rhs: limit,
        },
        Inst::Branch {
            cond,
            then_bb: vec_body,
            else_bb: merge,
        },
    ];

    // --- Vector loop body: clone of the scalar body over vectors. ---
    let mut vbody: Vec<Inst> = Vec::new();
    // Registers in the clone: scalar address temporaries get fresh scalar
    // registers; value-producing instructions get fresh vector registers.
    let mut regmap: HashMap<VReg, VReg> = HashMap::new();
    let mut vector_regs: HashSet<VReg> = HashSet::new();

    // Helper lookups have to be done without closures to keep the borrow
    // checker happy while `f` is mutated for fresh registers.
    for (index, inst) in body_insts.iter().enumerate() {
        if plan.skip.contains(&index) {
            continue;
        }
        if plan.address_slice.contains(&index) {
            // Clone the scalar address computation with fresh registers.
            let mut cloned = inst.clone();
            let dst = inst.dst().expect("address computations define a value");
            let fresh = f.new_vreg(f.vreg_type(dst));
            cloned.rewrite_regs(|r| {
                if r == dst {
                    fresh
                } else {
                    *regmap.get(&r).unwrap_or(&r)
                }
            });
            regmap.insert(dst, fresh);
            vbody.push(cloned);
            continue;
        }
        match inst {
            Inst::Load {
                dst,
                ty,
                addr,
                offset,
            } => {
                let vaddr = *regmap.get(addr).unwrap_or(addr);
                let vdst = f.new_vreg(Type::Vector(*ty));
                vbody.push(Inst::VecLoad {
                    dst: vdst,
                    elem: *ty,
                    addr: vaddr,
                    offset: *offset,
                });
                regmap.insert(*dst, vdst);
                vector_regs.insert(vdst);
            }
            Inst::Store {
                ty,
                addr,
                offset,
                value,
            } => {
                let vaddr = *regmap.get(addr).unwrap_or(addr);
                let vvalue = vec_operand(*value, &regmap, &vector_regs, &splats);
                vbody.push(Inst::VecStore {
                    elem: *ty,
                    addr: vaddr,
                    offset: *offset,
                    value: vvalue,
                });
            }
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                let vl_ = vec_operand(*lhs, &regmap, &vector_regs, &splats);
                let vr = vec_operand(*rhs, &regmap, &vector_regs, &splats);
                let vdst = f.new_vreg(Type::Vector(*ty));
                vbody.push(Inst::VecBin {
                    op: *op,
                    elem: *ty,
                    dst: vdst,
                    lhs: vl_,
                    rhs: vr,
                });
                regmap.insert(*dst, vdst);
                vector_regs.insert(vdst);
            }
            Inst::Move { dst, src, .. } => {
                let v = vec_operand(*src, &regmap, &vector_regs, &splats);
                regmap.insert(*dst, v);
                vector_regs.insert(v);
            }
            Inst::Const { .. } => {
                // Handled through the splat table when used by value ops; the
                // scalar constant itself is not needed in the vector body.
            }
            Inst::Jump { .. } => {}
            other => unreachable!("legality analysis admitted {other:?}"),
        }
    }
    // Reduction updates.
    for red in &plan.reductions {
        let vacc = vaccs[&red.acc];
        let vother = vec_operand(red.other, &regmap, &vector_regs, &splats);
        vbody.push(Inst::VecBin {
            op: red.op,
            elem,
            dst: vacc,
            lhs: vacc,
            rhs: vother,
        });
    }
    // Induction variable advance and back edge.
    vbody.push(Inst::Bin {
        op: BinOp::Add,
        ty: ivty,
        dst: plan.iv.reg,
        lhs: plan.iv.reg,
        rhs: vl,
    });
    vbody.push(Inst::Jump { target: vec_header });
    f.block_mut(vec_body).insts = vbody;

    // --- Merge block: fold vector accumulators back into the scalars. ---
    let mut minsts: Vec<Inst> = Vec::new();
    for red in &plan.reductions {
        let vacc = vaccs[&red.acc];
        let partial = f.new_vreg(Type::Scalar(elem));
        minsts.push(Inst::VecReduce {
            op: reduce_op(red.op).expect("reduction operator"),
            elem,
            dst: partial,
            src: vacc,
        });
        minsts.push(Inst::Bin {
            op: red.op,
            ty: elem,
            dst: red.acc,
            lhs: red.acc,
            rhs: partial,
        });
    }
    minsts.push(Inst::Jump {
        target: plan.header,
    });
    f.block_mut(merge).insts = minsts;

    (vec_body, vec_header)
}

fn vec_operand(
    r: VReg,
    regmap: &HashMap<VReg, VReg>,
    vector_regs: &HashSet<VReg>,
    splats: &HashMap<VReg, VReg>,
) -> VReg {
    if let Some(mapped) = regmap.get(&r) {
        if vector_regs.contains(mapped) {
            return *mapped;
        }
    }
    if let Some(s) = splats.get(&r) {
        return *s;
    }
    // Fall back to the mapped scalar (this only happens for values that the
    // legality analysis guaranteed are vectors or splats).
    *regmap.get(&r).unwrap_or(&r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;
    use splitc_vbc::{verify_function, Interpreter, Memory, Value};

    fn compile(src: &str) -> Module {
        compile_source(src, "t").expect("source compiles")
    }

    const SAXPY: &str = r#"
        fn saxpy(n: i32, a: f32, x: *f32, y: *f32) {
            for (let i: i32 = 0; i < n; i = i + 1) {
                y[i] = a * x[i] + y[i];
            }
        }
    "#;

    const MAX_U8: &str = r#"
        fn max_u8(n: i32, x: *u8) -> u8 {
            let m: u8 = 0;
            for (let i: i32 = 0; i < n; i = i + 1) {
                m = max(m, x[i]);
            }
            return m;
        }
    "#;

    #[test]
    fn saxpy_is_vectorized_and_stays_valid() {
        let mut m = compile(SAXPY);
        let f = m.function_mut("saxpy").unwrap();
        let report = vectorize_function(f);
        assert_eq!(report.count(), 1, "rejections: {:?}", report.rejected);
        assert_eq!(report.vectorized[0].1, ScalarType::F32);
        assert!(!report.vectorized[0].2, "saxpy has no reduction");
        verify_function(f).expect("vectorized function verifies");
        assert!(f.uses_vector_builtins());
        assert!(f.annotations.vectorization().unwrap().any());
    }

    #[test]
    fn vectorized_saxpy_computes_the_same_result() {
        let mut m = compile(SAXPY);
        let scalar = m.clone();
        vectorize_function(m.function_mut("saxpy").unwrap());

        let n = 37usize; // deliberately not a multiple of the lane count
        let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let ys: Vec<f32> = (0..n).map(|i| 100.0 - i as f32).collect();

        let run = |module: &Module| {
            let mut mem = Memory::new(1 << 16);
            let x = mem.alloc((n * 4) as u64);
            let y = mem.alloc((n * 4) as u64);
            mem.write_f32s(x, &xs);
            mem.write_f32s(y, &ys);
            let mut interp = Interpreter::new(module);
            interp
                .run(
                    "saxpy",
                    &[
                        Value::Int(n as i64),
                        Value::Float(2.5),
                        Value::Int(x as i64),
                        Value::Int(y as i64),
                    ],
                    &mut mem,
                )
                .unwrap();
            mem.read_f32s(y, n)
        };
        assert_eq!(run(&scalar), run(&m));
    }

    #[test]
    fn max_reduction_is_vectorized_and_matches_scalar() {
        let mut m = compile(MAX_U8);
        let scalar = m.clone();
        let report = vectorize_function(m.function_mut("max_u8").unwrap());
        assert_eq!(report.count(), 1, "rejections: {:?}", report.rejected);
        assert!(report.vectorized[0].2, "max_u8 is a reduction");
        verify_function(m.function("max_u8").unwrap()).unwrap();

        let n = 100usize;
        let data: Vec<u8> = (0..n).map(|i| ((i * 37 + 11) % 251) as u8).collect();
        let run = |module: &Module| {
            let mut mem = Memory::new(1 << 16);
            let x = mem.alloc(n as u64);
            mem.write_u8s(x, &data);
            let mut interp = Interpreter::new(module);
            interp
                .run(
                    "max_u8",
                    &[Value::Int(n as i64), Value::Int(x as i64)],
                    &mut mem,
                )
                .unwrap()
        };
        assert_eq!(run(&scalar), run(&m));
    }

    #[test]
    fn sum_reduction_with_wrapping_u16_matches_scalar() {
        let src = r#"
            fn sum_u16(n: i32, x: *u16) -> u16 {
                let s: u16 = 0;
                for (let i: i32 = 0; i < n; i = i + 1) {
                    s = s + x[i];
                }
                return s;
            }
        "#;
        let mut m = compile(src);
        let scalar = m.clone();
        let report = vectorize_function(m.function_mut("sum_u16").unwrap());
        assert_eq!(report.count(), 1, "rejections: {:?}", report.rejected);

        let n = 999usize;
        let data: Vec<u16> = (0..n).map(|i| (i * 131 % 65521) as u16).collect();
        let run = |module: &Module| {
            let mut mem = Memory::new(1 << 16);
            let x = mem.alloc((n * 2) as u64);
            mem.write_u16s(x, &data);
            let mut interp = Interpreter::new(module);
            interp
                .run(
                    "sum_u16",
                    &[Value::Int(n as i64), Value::Int(x as i64)],
                    &mut mem,
                )
                .unwrap()
        };
        assert_eq!(run(&scalar), run(&m));
    }

    #[test]
    fn non_unit_stride_and_data_dependent_loops_are_rejected() {
        let strided = r#"
            fn k(n: i32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 2) { x[i] = 0.0; }
            }
        "#;
        let mut m = compile(strided);
        let report = vectorize_function(m.function_mut("k").unwrap());
        assert_eq!(report.count(), 0);
        assert!(report
            .rejected
            .iter()
            .any(|(_, r)| r.contains("unit stride")));

        let gather = r#"
            fn k(n: i32, x: *f32, idx: *i32) {
                for (let i: i32 = 0; i < n; i = i + 1) { x[idx[i]] = 0.0; }
            }
        "#;
        let mut m = compile(gather);
        let report = vectorize_function(m.function_mut("k").unwrap());
        assert_eq!(report.count(), 0);
    }

    #[test]
    fn loop_with_call_or_branch_in_body_is_rejected() {
        let call = r#"
            fn g(x: f32) -> f32 { return x; }
            fn k(n: i32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) { x[i] = g(x[i]); }
            }
        "#;
        let mut m = compile(call);
        let report = vectorize_function(m.function_mut("k").unwrap());
        assert_eq!(report.count(), 0);

        let branch = r#"
            fn k(n: i32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) {
                    if (x[i] > 0.0) { x[i] = 0.0; }
                }
            }
        "#;
        let mut m = compile(branch);
        let report = vectorize_function(m.function_mut("k").unwrap());
        assert_eq!(report.count(), 0, "multi-block bodies are not vectorized");
    }

    #[test]
    fn induction_variable_used_as_a_value_is_rejected() {
        let src = r#"
            fn iota(n: i32, x: *i32) {
                for (let i: i32 = 0; i < n; i = i + 1) { x[i] = i; }
            }
        "#;
        let mut m = compile(src);
        let report = vectorize_function(m.function_mut("iota").unwrap());
        assert_eq!(report.count(), 0);
        assert!(report
            .rejected
            .iter()
            .any(|(_, r)| r.contains("induction variable is used as a value")));
    }

    #[test]
    fn mixed_element_types_are_rejected() {
        let src = r#"
            fn k(n: i32, x: *f32, y: *f64) {
                for (let i: i32 = 0; i < n; i = i + 1) {
                    y[i] = (x[i] as f64) * 2.0;
                }
            }
        "#;
        let mut m = compile(src);
        let report = vectorize_function(m.function_mut("k").unwrap());
        assert_eq!(report.count(), 0);
    }

    #[test]
    fn constant_trip_count_is_recorded_as_a_hint() {
        let src = r#"
            fn k(x: *f32) {
                for (let i: i32 = 0; i < 1024; i = i + 1) { x[i] = x[i] * 2.0; }
            }
        "#;
        let mut m = compile(src);
        let f = m.function_mut("k").unwrap();
        let report = vectorize_function(f);
        assert_eq!(report.count(), 1, "rejections: {:?}", report.rejected);
        let summary = f.annotations.vectorization().unwrap();
        assert_eq!(summary.loops[0].trip_count_hint, Some(1024));
        verify_function(f).unwrap();
    }

    #[test]
    fn vectorize_module_covers_all_functions() {
        let mut m = compile(&format!("{SAXPY}\n{MAX_U8}"));
        let scalar = m.clone();
        let reports = vectorize_module(&mut m);
        assert_eq!(reports.len(), 2);
        assert!(reports.values().all(|r| r.count() == 1));
        assert!(reports.values().all(|r| r.analysis_work > 0));
        // Code size grows (vector loop + epilogue) but the module still verifies.
        assert!(m.num_insts() > scalar.num_insts());
        splitc_vbc::verify_module(&m).unwrap();
    }
}
