//! Natural-loop detection.

use crate::cfg::predecessors;
use crate::dom::Dominators;
use splitc_vbc::{BlockId, Function};
use std::collections::BTreeSet;

/// A natural loop: a header block dominating a set of blocks with at least one
/// back edge into the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Sources of back edges (blocks inside the loop that jump to the header).
    pub latches: Vec<BlockId>,
    /// Blocks outside the loop that are targets of edges leaving the loop.
    pub exits: Vec<BlockId>,
}

impl Loop {
    /// `true` if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// The unique predecessor of the header that lies outside the loop, if any.
    ///
    /// The front end's lowering always produces such a preheader, which is
    /// where the vectorizer hoists splats and the vector-trip-count
    /// computation.
    pub fn preheader(&self, f: &Function) -> Option<BlockId> {
        let preds = predecessors(f);
        let outside: Vec<_> = preds[self.header.index()]
            .iter()
            .copied()
            .filter(|p| !self.contains(*p))
            .collect();
        match outside.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }
}

/// All natural loops of a function.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops in discovery order (one per distinct header).
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Find the natural loops of `f` using its dominator tree.
    pub fn compute(f: &Function) -> Self {
        let dom = Dominators::compute(f);
        let preds = predecessors(f);
        let mut loops: Vec<Loop> = Vec::new();

        for block in &f.blocks {
            if !dom.is_reachable(block.id) {
                continue;
            }
            for succ in block.successors() {
                // Back edge: block -> succ where succ dominates block.
                if dom.dominates(succ, block.id) {
                    let header = succ;
                    let latch = block.id;
                    // Collect the loop body: everything that reaches the latch
                    // without passing through the header.
                    let mut body: BTreeSet<BlockId> = BTreeSet::new();
                    body.insert(header);
                    let mut stack = vec![latch];
                    while let Some(b) = stack.pop() {
                        if body.insert(b) {
                            for &p in &preds[b.index()] {
                                stack.push(p);
                            }
                        }
                    }
                    if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                        existing.blocks.extend(body);
                        existing.latches.push(latch);
                    } else {
                        loops.push(Loop {
                            header,
                            blocks: body,
                            latches: vec![latch],
                            exits: Vec::new(),
                        });
                    }
                }
            }
        }

        for l in &mut loops {
            let mut exits = BTreeSet::new();
            for &b in &l.blocks {
                for s in f.block(b).successors() {
                    if !l.blocks.contains(&s) {
                        exits.insert(s);
                    }
                }
            }
            l.exits = exits.into_iter().collect();
        }
        LoopForest { loops }
    }

    /// Loops that contain no other loop (the vectorization candidates).
    pub fn innermost(&self) -> Vec<&Loop> {
        self.loops
            .iter()
            .filter(|l| {
                !self
                    .loops
                    .iter()
                    .any(|other| other.header != l.header && l.blocks.contains(&other.header))
            })
            .collect()
    }

    /// The loop whose header is `header`, if any.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_minic::compile_source;

    fn kernel_loop() -> Function {
        let m = compile_source(
            r#"
            fn dscal(n: i32, a: f32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) {
                    x[i] = a * x[i];
                }
            }
            "#,
            "t",
        )
        .unwrap();
        m.function("dscal").unwrap().clone()
    }

    fn nested_loops() -> Function {
        let m = compile_source(
            r#"
            fn mm(n: i32, x: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) {
                    for (let j: i32 = 0; j < n; j = j + 1) {
                        x[j] = x[j] + 1.0;
                    }
                }
            }
            "#,
            "t",
        )
        .unwrap();
        m.function("mm").unwrap().clone()
    }

    #[test]
    fn finds_the_single_loop_of_a_kernel() {
        let f = kernel_loop();
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.latches.len(), 1);
        assert_eq!(l.exits.len(), 1);
        assert!(l.contains(l.header));
        assert!(l.preheader(&f).is_some());
        assert!(!l.contains(l.exits[0]));
    }

    #[test]
    fn nested_loops_are_distinguished_and_innermost_is_found() {
        let f = nested_loops();
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops.len(), 2);
        let inner = forest.innermost();
        assert_eq!(inner.len(), 1);
        let outer = forest
            .loops
            .iter()
            .find(|l| l.header != inner[0].header)
            .unwrap();
        assert!(outer.blocks.len() > inner[0].blocks.len());
        assert!(outer.blocks.contains(&inner[0].header));
        assert!(forest.loop_with_header(inner[0].header).is_some());
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let m = compile_source("fn f(x: i32) -> i32 { return x + 1; }", "t").unwrap();
        let f = m.function("f").unwrap();
        assert!(LoopForest::compute(f).loops.is_empty());
    }
}
