//! Abstract syntax tree of the mini-C kernel language.

use splitc_vbc::ScalarType;
use std::fmt;

/// A mini-C type: a scalar or a pointer to a scalar element type.
///
/// Pointers are one level deep only; that is all the paper's kernels need and
/// it keeps address arithmetic (`p[i]`) unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiniType {
    /// A scalar value type.
    Scalar(ScalarType),
    /// A pointer to elements of the given scalar type.
    Ptr(ScalarType),
}

impl MiniType {
    /// The scalar this type stores or points to.
    pub fn elem(self) -> ScalarType {
        match self {
            MiniType::Scalar(s) | MiniType::Ptr(s) => s,
        }
    }

    /// `true` for pointer types.
    pub fn is_ptr(self) -> bool {
        matches!(self, MiniType::Ptr(_))
    }

    /// The bytecode type this mini-C type lowers to.
    pub fn to_vbc(self) -> splitc_vbc::Type {
        match self {
            MiniType::Scalar(s) => splitc_vbc::Type::Scalar(s),
            MiniType::Ptr(_) => splitc_vbc::Type::Scalar(ScalarType::Ptr),
        }
    }
}

impl fmt::Display for MiniType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiniType::Scalar(s) => write!(f, "{s}"),
            MiniType::Ptr(s) => write!(f, "*{s}"),
        }
    }
}

/// Binary operators of the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinaryOp {
    /// `true` for comparison operators (result type `i32`).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }

    /// `true` for short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::LogAnd | BinaryOp::LogOr)
    }
}

/// Unary operators of the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Logical negation `!` (result `i32`).
    LogNot,
    /// Bitwise complement `~`.
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Explicit conversion `expr as T`.
    Cast {
        /// Converted expression.
        expr: Box<Expr>,
        /// Target type.
        ty: MiniType,
    },
    /// Function or intrinsic call.
    Call {
        /// Callee name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Pointer indexing `p[i]` (element load when used as a value).
    Index {
        /// Pointer variable name.
        ptr: String,
        /// Element index expression.
        index: Box<Expr>,
    },
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable or parameter.
    Var(String),
    /// An element of an array pointed to by a pointer variable.
    Index {
        /// Pointer variable name.
        ptr: String,
        /// Element index expression.
        index: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name: ty = init;`
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: MiniType,
        /// Initializer expression.
        init: Expr,
    },
    /// `target = value;`
    Assign {
        /// Assigned location.
        target: LValue,
        /// Assigned value.
        value: Expr,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: BlockStmt,
        /// Optional else branch.
        else_blk: Option<BlockStmt>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: BlockStmt,
    },
    /// `for (init; cond; step) { .. }`
    For {
        /// Initialization statement (a `let` or assignment).
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step statement (an assignment).
        step: Box<Stmt>,
        /// Loop body.
        body: BlockStmt,
    },
    /// `return expr?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
    },
    /// An expression evaluated for its side effects (e.g. a call).
    Expr {
        /// The expression.
        expr: Expr,
    },
}

/// A brace-delimited statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockStmt {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: MiniType,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters, in order.
    pub params: Vec<Param>,
    /// Return type, or `None` for a void function.
    pub ret: Option<MiniType>,
    /// Function body.
    pub body: BlockStmt,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All function declarations.
    pub functions: Vec<FuncDecl>,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&FuncDecl> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_type_properties() {
        let p = MiniType::Ptr(ScalarType::F32);
        assert!(p.is_ptr());
        assert_eq!(p.elem(), ScalarType::F32);
        assert_eq!(p.to_vbc(), splitc_vbc::Type::Scalar(ScalarType::Ptr));
        assert_eq!(p.to_string(), "*f32");
        let s = MiniType::Scalar(ScalarType::U16);
        assert!(!s.is_ptr());
        assert_eq!(s.to_vbc(), splitc_vbc::Type::Scalar(ScalarType::U16));
        assert_eq!(s.to_string(), "u16");
    }

    #[test]
    fn operator_classification() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::LogAnd.is_logical());
        assert!(!BinaryOp::BitAnd.is_logical());
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            functions: vec![FuncDecl {
                name: "f".into(),
                params: vec![],
                ret: None,
                body: BlockStmt::default(),
            }],
        };
        assert!(p.function("f").is_some());
        assert!(p.function("g").is_none());
    }
}
