//! Tokens and source positions for the mini-C kernel language.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Create a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Identifier or keyword candidate.
    Ident(String),
    /// `fn`
    KwFn,
    /// `let`
    KwLet,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `as`
    KwAs,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `~`
    Tilde,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer literal {v}"),
            TokenKind::Float(v) => write!(f, "float literal {v}"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::KwFn => write!(f, "`fn`"),
            TokenKind::KwLet => write!(f, "`let`"),
            TokenKind::KwIf => write!(f, "`if`"),
            TokenKind::KwElse => write!(f, "`else`"),
            TokenKind::KwWhile => write!(f, "`while`"),
            TokenKind::KwFor => write!(f, "`for`"),
            TokenKind::KwReturn => write!(f, "`return`"),
            TokenKind::KwAs => write!(f, "`as`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Shl => write!(f, "`<<`"),
            TokenKind::Shr => write!(f, "`>>`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Tilde => write!(f, "`~`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_displays_line_and_column() {
        assert_eq!(Span::new(3, 14).to_string(), "3:14");
    }

    #[test]
    fn token_kinds_display_readably() {
        assert_eq!(TokenKind::KwFn.to_string(), "`fn`");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(TokenKind::Int(7).to_string(), "integer literal 7");
    }
}
