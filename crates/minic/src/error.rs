//! Front-end error type shared by the lexer, parser and lowering.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// An error produced while compiling mini-C source to bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Which front-end stage detected the problem.
    pub stage: Stage,
    /// Source position, when known.
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
}

/// The front-end stage that produced a [`CompileError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking and lowering.
    Lower,
}

impl CompileError {
    /// Create a lexer error at `span`.
    pub fn lex(span: Span, message: impl Into<String>) -> Self {
        CompileError {
            stage: Stage::Lex,
            span: Some(span),
            message: message.into(),
        }
    }

    /// Create a parser error at `span`.
    pub fn parse(span: Span, message: impl Into<String>) -> Self {
        CompileError {
            stage: Stage::Parse,
            span: Some(span),
            message: message.into(),
        }
    }

    /// Create a lowering/type error (no precise source position).
    pub fn lower(message: impl Into<String>) -> Self {
        CompileError {
            stage: Stage::Lower,
            span: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Lower => "lower",
        };
        match self.span {
            Some(span) => write!(f, "{stage} error at {span}: {}", self.message),
            None => write!(f, "{stage} error: {}", self.message),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_and_without_spans() {
        let e = CompileError::parse(Span::new(2, 5), "expected `;`");
        assert_eq!(e.to_string(), "parse error at 2:5: expected `;`");
        let e = CompileError::lower("type mismatch");
        assert_eq!(e.to_string(), "lower error: type mismatch");
    }
}
