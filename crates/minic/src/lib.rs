//! # splitc-minic — the mini-C kernel language front end
//!
//! A small C-like language and its compiler to the `splitc` virtual bytecode.
//! This is the offline compiler's front half in the DAC 2010 split-compilation
//! reproduction: developers write portable kernels once, the front end lowers
//! them to target-independent bytecode, and the `splitc-opt` crate then runs
//! the expensive offline analyses (vectorization, split register allocation)
//! over that bytecode.
//!
//! The language supports exactly what the paper's evaluation kernels need:
//! machine scalar types, one-level pointers with `p[i]` indexing, `let`/
//! assignments, `if`/`while`/`for`, function calls, explicit `as` casts and
//! the `min`/`max` intrinsics (so reduction kernels stay branch-free).
//!
//! # Example
//!
//! ```
//! use splitc_minic::compile_source;
//! use splitc_vbc::{Interpreter, Memory, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = compile_source(
//!     r#"
//!     fn dscal(n: i32, a: f32, x: *f32) {
//!         for (let i: i32 = 0; i < n; i = i + 1) {
//!             x[i] = a * x[i];
//!         }
//!     }
//!     "#,
//!     "kernels",
//! )?;
//!
//! let mut mem = Memory::new(1 << 12);
//! let x = mem.alloc(4 * 4);
//! mem.write_f32s(x, &[1.0, 2.0, 3.0, 4.0]);
//! let mut interp = Interpreter::new(&module);
//! interp.run("dscal", &[Value::Int(4), Value::Float(0.5), Value::Int(x as i64)], &mut mem)?;
//! assert_eq!(mem.read_f32s(x, 4), vec![0.5, 1.0, 1.5, 2.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod token;

pub use ast::{
    BinaryOp, BlockStmt, Expr, FuncDecl, LValue, MiniType, Param, Program, Stmt, UnaryOp,
};
pub use error::{CompileError, Stage};
pub use lexer::lex;
pub use lower::{check_program, compile_program, compile_source, signatures, FuncSig};
pub use parser::parse;
pub use token::{Span, Token, TokenKind};
