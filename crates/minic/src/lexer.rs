//! Hand-written lexer for the mini-C kernel language.

use crate::error::CompileError;
use crate::token::{Span, Token, TokenKind};

/// Tokenize `source` into a vector of tokens ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters or malformed numeric
/// literals.
///
/// # Examples
///
/// ```
/// use splitc_minic::lex;
/// let tokens = lex("fn f() { return; }").unwrap();
/// assert!(tokens.len() > 5);
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia();
            let span = self.span();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_digit() {
                self.number(span)?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else {
                self.symbol(span)?
            };
            tokens.push(Token { kind, span });
        }
    }

    fn number(&mut self, span: Span) -> Result<TokenKind, CompileError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                self.bump();
            } else if c == '.' && !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == '-' || d == '+')
            {
                is_float = true;
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .filter(|c| **c != '_')
            .collect();
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| CompileError::lex(span, format!("malformed float literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| CompileError::lex(span, format!("malformed integer literal `{text}`")))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match text.as_str() {
            "fn" => TokenKind::KwFn,
            "let" => TokenKind::KwLet,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "return" => TokenKind::KwReturn,
            "as" => TokenKind::KwAs,
            _ => TokenKind::Ident(text),
        }
    }

    fn symbol(&mut self, span: Span) -> Result<TokenKind, CompileError> {
        let c = self
            .bump()
            .expect("symbol called with a character available");
        let two = |l: &mut Self, next: char, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ',' => TokenKind::Comma,
            ';' => TokenKind::Semi,
            ':' => TokenKind::Colon,
            '*' => TokenKind::Star,
            '+' => TokenKind::Plus,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '^' => TokenKind::Caret,
            '~' => TokenKind::Tilde,
            '-' => two(self, '>', TokenKind::Arrow, TokenKind::Minus),
            '&' => two(self, '&', TokenKind::AndAnd, TokenKind::Amp),
            '|' => two(self, '|', TokenKind::OrOr, TokenKind::Pipe),
            '!' => two(self, '=', TokenKind::NotEq, TokenKind::Bang),
            '=' => two(self, '=', TokenKind::EqEq, TokenKind::Assign),
            '<' => {
                if self.peek() == Some('<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    two(self, '=', TokenKind::Le, TokenKind::Lt)
                }
            }
            '>' => {
                if self.peek() == Some('>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    two(self, '=', TokenKind::Ge, TokenKind::Gt)
                }
            }
            other => {
                let _ = self.source;
                return Err(CompileError::lex(
                    span,
                    format!("unexpected character `{other}`"),
                ));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_idents_and_symbols() {
        let k = kinds("fn add(a: i32) -> i32 { return a + 1; }");
        assert_eq!(k[0], TokenKind::KwFn);
        assert_eq!(k[1], TokenKind::Ident("add".into()));
        assert!(k.contains(&TokenKind::Arrow));
        assert!(k.contains(&TokenKind::KwReturn));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("1_000")[0], TokenKind::Int(1000));
        assert_eq!(kinds("2.5")[0], TokenKind::Float(2.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn distinguishes_compound_operators() {
        assert_eq!(
            kinds("a <= b << c < d")
                .into_iter()
                .filter(|k| !matches!(k, TokenKind::Ident(_) | TokenKind::Eof))
                .collect::<Vec<_>>(),
            vec![TokenKind::Le, TokenKind::Shl, TokenKind::Lt]
        );
        assert_eq!(
            kinds("a && b & c || d | e")
                .into_iter()
                .filter(|k| !matches!(k, TokenKind::Ident(_) | TokenKind::Eof))
                .collect::<Vec<_>>(),
            vec![
                TokenKind::AndAnd,
                TokenKind::Amp,
                TokenKind::OrOr,
                TokenKind::Pipe
            ]
        );
        assert_eq!(
            kinds("a == b = c != d ! e")
                .into_iter()
                .filter(|k| !matches!(k, TokenKind::Ident(_) | TokenKind::Eof))
                .collect::<Vec<_>>(),
            vec![
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::NotEq,
                TokenKind::Bang
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_positions() {
        let toks = lex("// a comment\n  x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].span, Span::new(2, 3));
    }

    #[test]
    fn reports_unknown_characters() {
        let err = lex("let x = $;").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(lex("99999999999999999999").is_err());
    }
}
