//! Recursive-descent parser for the mini-C kernel language.

use crate::ast::{
    BinaryOp, BlockStmt, Expr, FuncDecl, LValue, MiniType, Param, Program, Stmt, UnaryOp,
};
use crate::error::CompileError;
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};
use splitc_vbc::ScalarType;

/// Parse a whole mini-C source file into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error found.
///
/// # Examples
///
/// ```
/// use splitc_minic::parse;
/// let program = parse("fn id(x: i32) -> i32 { return x; }").unwrap();
/// assert_eq!(program.functions.len(), 1);
/// assert_eq!(program.functions[0].name, "id");
/// ```
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), CompileError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(CompileError::parse(
                self.span(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(CompileError::parse(
                self.span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut functions = Vec::new();
        while self.peek() != &TokenKind::Eof {
            functions.push(self.func_decl()?);
        }
        Ok(Program { functions })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, CompileError> {
        self.expect(&TokenKind::KwFn)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let ret = if self.eat(&TokenKind::Arrow) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            ret,
            body,
        })
    }

    fn ty(&mut self) -> Result<MiniType, CompileError> {
        let ptr = self.eat(&TokenKind::Star);
        let span = self.span();
        let name = self.ident()?;
        let scalar = ScalarType::from_mnemonic(&name)
            .ok_or_else(|| CompileError::parse(span, format!("unknown type `{name}`")))?;
        Ok(if ptr {
            MiniType::Ptr(scalar)
        } else {
            MiniType::Scalar(scalar)
        })
    }

    fn block(&mut self) -> Result<BlockStmt, CompileError> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(CompileError::parse(self.span(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(BlockStmt { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            TokenKind::KwLet => {
                let s = self.let_stmt()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwReturn => {
                self.advance();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    fn let_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(&TokenKind::KwLet)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        self.expect(&TokenKind::Assign)?;
        let init = self.expr()?;
        Ok(Stmt::Let { name, ty, init })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.block()?;
        let else_blk = if self.eat(&TokenKind::KwElse) {
            if self.peek() == &TokenKind::KwIf {
                let nested = self.if_stmt()?;
                Some(BlockStmt {
                    stmts: vec![nested],
                })
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(&TokenKind::KwFor)?;
        self.expect(&TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::KwLet {
            self.let_stmt()?
        } else {
            self.simple_stmt()?
        };
        self.expect(&TokenKind::Semi)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        let step = self.simple_stmt()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For {
            init: Box::new(init),
            cond,
            step: Box::new(step),
            body,
        })
    }

    /// An assignment or expression statement, without the trailing `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let span = self.span();
        let expr = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let target = match expr {
                Expr::Var(name) => LValue::Var(name),
                Expr::Index { ptr, index } => LValue::Index { ptr, index: *index },
                _ => {
                    return Err(CompileError::parse(
                        span,
                        "left-hand side of assignment must be a variable or an indexed pointer",
                    ));
                }
            };
            let value = self.expr()?;
            Ok(Stmt::Assign { target, value })
        } else {
            Ok(Stmt::Expr { expr })
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.logical_or()
    }

    fn logical_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.logical_and()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.logical_and()?;
            lhs = Expr::Binary {
                op: BinaryOp::LogOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_or()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.bit_or()?;
            lhs = Expr::Binary {
                op: BinaryOp::LogAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_xor()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary {
                op: BinaryOp::BitOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bit_and()?;
        while self.eat(&TokenKind::Caret) {
            let rhs = self.bit_and()?;
            lhs = Expr::Binary {
                op: BinaryOp::BitXor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.equality()?;
        while self.eat(&TokenKind::Amp) {
            let rhs = self.equality()?;
            lhs = Expr::Binary {
                op: BinaryOp::BitAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.relational()?;
        loop {
            let op = if self.eat(&TokenKind::EqEq) {
                BinaryOp::Eq
            } else if self.eat(&TokenKind::NotEq) {
                BinaryOp::Ne
            } else {
                break;
            };
            let rhs = self.relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.shift()?;
        loop {
            let op = if self.eat(&TokenKind::Lt) {
                BinaryOp::Lt
            } else if self.eat(&TokenKind::Le) {
                BinaryOp::Le
            } else if self.eat(&TokenKind::Gt) {
                BinaryOp::Gt
            } else if self.eat(&TokenKind::Ge) {
                BinaryOp::Ge
            } else {
                break;
            };
            let rhs = self.shift()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.eat(&TokenKind::Shl) {
                BinaryOp::Shl
            } else if self.eat(&TokenKind::Shr) {
                BinaryOp::Shr
            } else {
                break;
            };
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat(&TokenKind::Plus) {
                BinaryOp::Add
            } else if self.eat(&TokenKind::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat(&TokenKind::Star) {
                BinaryOp::Mul
            } else if self.eat(&TokenKind::Slash) {
                BinaryOp::Div
            } else if self.eat(&TokenKind::Percent) {
                BinaryOp::Rem
            } else {
                break;
            };
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let op = if self.eat(&TokenKind::Minus) {
            Some(UnaryOp::Neg)
        } else if self.eat(&TokenKind::Bang) {
            Some(UnaryOp::LogNot)
        } else if self.eat(&TokenKind::Tilde) {
            Some(UnaryOp::BitNot)
        } else {
            None
        };
        if let Some(op) = op {
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut expr = self.primary()?;
        loop {
            if self.eat(&TokenKind::KwAs) {
                let ty = self.ty()?;
                expr = Expr::Cast {
                    expr: Box::new(expr),
                    ty,
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let span = self.span();
        match self.advance() {
            TokenKind::Int(v) => Ok(Expr::IntLit(v)),
            TokenKind::Float(v) => Ok(Expr::FloatLit(v)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { name, args })
                } else if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index {
                        ptr: name,
                        index: Box::new(index),
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(CompileError::parse(
                span,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_saxpy() {
        let src = r#"
            fn saxpy(n: i32, a: f32, x: *f32, y: *f32) {
                for (let i: i32 = 0; i < n; i = i + 1) {
                    y[i] = a * x[i] + y[i];
                }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.params.len(), 4);
        assert_eq!(f.params[2].ty, MiniType::Ptr(ScalarType::F32));
        assert!(f.ret.is_none());
        assert!(matches!(f.body.stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn parses_if_else_chain_and_calls() {
        let src = r#"
            fn classify(x: i32) -> i32 {
                if (x < 0) { return 0 - 1; }
                else if (x == 0) { return 0; }
                else { return helper(x, 2); }
            }
            fn helper(a: i32, b: i32) -> i32 { return a * b; }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 2);
        let f = p.function("classify").unwrap();
        assert!(matches!(f.body.stmts[0], Stmt::If { .. }));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("fn f(a: i32, b: i32, c: i32) -> i32 { return a + b * c; }").unwrap();
        let Stmt::Return { value: Some(e) } = &p.functions[0].body.stmts[0] else {
            panic!("expected return");
        };
        let Expr::Binary {
            op: BinaryOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!("expected top-level add, got {e:?}");
        };
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn precedence_comparison_below_shift_and_cast_postfix() {
        let p = parse("fn f(a: i32) -> i32 { return (a << 1) < 8; }").unwrap();
        let Stmt::Return { value: Some(e) } = &p.functions[0].body.stmts[0] else {
            panic!("expected return");
        };
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Lt,
                ..
            }
        ));

        let p = parse("fn g(a: i32) -> f32 { return a as f32 * 2.0; }").unwrap();
        let Stmt::Return { value: Some(e) } = &p.functions[0].body.stmts[0] else {
            panic!("expected return");
        };
        let Expr::Binary {
            op: BinaryOp::Mul,
            lhs,
            ..
        } = e
        else {
            panic!("expected mul at top level");
        };
        assert!(matches!(**lhs, Expr::Cast { .. }));
    }

    #[test]
    fn index_assignment_and_while() {
        let src =
            "fn fill(p: *u8, n: i32) { let i: i32 = 0; while (i < n) { p[i] = 7; i = i + 1; } }";
        let p = parse(src).unwrap();
        let f = &p.functions[0];
        assert!(matches!(f.body.stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("fn f(a: i32) -> i32 { return -~!a; }").unwrap();
        let Stmt::Return { value: Some(e) } = &p.functions[0].body.stmts[0] else {
            panic!("expected return");
        };
        assert!(matches!(
            e,
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse("fn f( { }").unwrap_err();
        assert!(err.to_string().contains("parse error at 1:"));
        let err = parse("fn f() { let x: nosuch = 1; }").unwrap_err();
        assert!(err.to_string().contains("unknown type"));
        let err = parse("fn f() { 1 + ; }").unwrap_err();
        assert!(err.to_string().contains("expected an expression"));
        let err = parse("fn f() { 1 + 2 = 3; }").unwrap_err();
        assert!(err.to_string().contains("left-hand side"));
    }

    #[test]
    fn unterminated_block_is_an_error() {
        assert!(parse("fn f() { let x: i32 = 1;").is_err());
    }
}
