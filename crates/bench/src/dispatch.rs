//! Shared harness for the dispatch benchmark: the tight-loop kernel timed
//! three ways — cold legacy walk, warm metered enum loop, warm threaded
//! handler table — with bit-identity asserted before any timing.
//!
//! `benches/simulator.rs` drives this for the Criterion run and the
//! `SIM_BENCH_ASSERT` thresholds; the `report` binary drives it for the
//! `dispatch` row of the `BENCH_sweep.json` perf trajectory, so both always
//! measure the same kernel the same way.

use splitc::splitc_jit::{compile_module, JitOptions};
use splitc::splitc_minic::compile_source;
use splitc::splitc_opt::{optimize_module, OptOptions};
use splitc::splitc_targets::{
    FusionStats, MProgram, MachineValue, PreparedProgram, PreparedSimulator, Simulator, TargetDesc,
};
use splitc::Workspace;
use std::time::Instant;

/// Elements per kernel invocation; enough that the run loop dominates.
pub const N: usize = 1024;

/// A branchy integer map + reduce: loads, ALU traffic, compares and a
/// two-sided conditional per element, then a reduction loop — the shape the
/// per-instruction decode overhead of the legacy walk hurts most, and whose
/// compare+branch density feeds the fusion and welding passes.
pub const TIGHT_LOOP: &str = "fn tight(n: i32, x: *i32, y: *i32) -> i32 {
    let acc: i32 = 0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        let v: i32 = x[i];
        let w: i32 = (v * 3 + i) - (v / 7);
        if (w > 64) { y[i] = w - 64; } else { y[i] = 64 - w; }
    }
    for (let k: i32 = 0; k < n; k = k + 1) {
        acc = acc + y[k];
    }
    return acc;
}";

/// The three-way timing (plus the shape of the prepared program) produced by
/// [`measure`].
pub struct DispatchMeasurement {
    /// ns per run, fresh `Simulator` + legacy block walk each run.
    pub legacy_ns: f64,
    /// ns per run, warm `PreparedSimulator` on the metered enum loop.
    pub metered_ns: f64,
    /// ns per run, warm `PreparedSimulator` on the threaded handler table.
    pub threaded_ns: f64,
    /// Simulated instructions retired per run (identical on all paths).
    pub instructions: u64,
    /// Macro-op fusion and welding hits in the prepared program.
    pub fusion: FusionStats,
}

impl DispatchMeasurement {
    /// Metered enum loop over the cold legacy walk.
    pub fn prepared_speedup(&self) -> f64 {
        self.legacy_ns / self.metered_ns
    }

    /// Threaded handler table over the metered enum loop.
    pub fn dispatch_speedup(&self) -> f64 {
        self.metered_ns / self.threaded_ns
    }
}

/// JIT-compile [`TIGHT_LOOP`] for the given target with split-annotation
/// register allocation (the paper's deployment mode).
pub fn compiled_tight_loop(target: &TargetDesc) -> MProgram {
    let mut module = compile_source(TIGHT_LOOP, "simbench").expect("kernel compiles");
    optimize_module(&mut module, &OptOptions::full());
    let (program, _stats) = compile_module(&module, target, &JitOptions::split()).expect("jit");
    program
}

/// A fresh 64 KiB workspace with the kernel's input array written and the
/// argument vector pointing at it.
pub fn workspace() -> (Workspace, [MachineValue; 3]) {
    let mut ws = Workspace::new(1 << 16);
    let x = ws.alloc(4 * N as u64);
    let y = ws.alloc(4 * N as u64);
    let data: Vec<i32> = (0..N as i32).map(|i| (i * 37) % 1000 - 500).collect();
    ws.write_i32s(x, &data);
    let args = [
        MachineValue::Int(N as i64),
        MachineValue::Int(x as i64),
        MachineValue::Int(y as i64),
    ];
    (ws, args)
}

/// Run the three-way comparison: assert results, memory and `SimStats` are
/// bit-identical across the legacy walk, the metered enum loop and the
/// threaded handler table, then time each side over `runs` runs.
pub fn measure(runs: u32) -> DispatchMeasurement {
    let target = TargetDesc::x86_sse();
    let program = compiled_tight_loop(&target);
    let prepared = PreparedProgram::prepare(&program, &target).expect("prepares");
    let fusion = prepared.fusion_stats();
    assert!(fusion.total() > 0, "fusion fires");

    // Correctness gate: all three paths must be bit-identical before any
    // timing.
    let (mut ws_a, args) = workspace();
    let (mut ws_b, _) = workspace();
    let (mut ws_c, _) = workspace();
    let mut legacy = Simulator::new(&program, &target);
    let legacy_out = legacy
        .run_legacy("tight", &args, ws_a.bytes_mut())
        .expect("legacy runs");
    let mut metered_sim = PreparedSimulator::new(&prepared);
    let metered_out = metered_sim
        .run_metered("tight", &args, ws_b.bytes_mut())
        .expect("metered runs");
    let mut threaded_sim = PreparedSimulator::new(&prepared);
    let threaded_out = threaded_sim
        .run("tight", &args, ws_c.bytes_mut())
        .expect("threaded runs");
    assert_eq!(legacy_out, metered_out, "results must be bit-identical");
    assert_eq!(legacy_out, threaded_out, "results must be bit-identical");
    assert_eq!(
        legacy.stats(),
        metered_sim.stats(),
        "SimStats must be bit-identical"
    );
    assert_eq!(
        legacy.stats(),
        threaded_sim.stats(),
        "SimStats must be bit-identical"
    );
    assert_eq!(ws_a.bytes(), ws_b.bytes(), "memory must be bit-identical");
    assert_eq!(ws_a.bytes(), ws_c.bytes(), "memory must be bit-identical");
    let instructions = threaded_sim.stats().instructions;

    // Headline: ns per run — cold legacy walk, warm metered enum loop, warm
    // threaded handler table.
    let (mut ws, args) = workspace();
    let start = Instant::now();
    for _ in 0..runs {
        let mut cold = Simulator::new(&program, &target);
        cold.run_legacy("tight", &args, ws.bytes_mut())
            .expect("runs");
    }
    let legacy_ns = start.elapsed().as_nanos() as f64 / f64::from(runs);

    let mut warm = PreparedSimulator::new(&prepared);
    let start = Instant::now();
    for _ in 0..runs {
        warm.run_metered("tight", &args, ws.bytes_mut())
            .expect("runs");
    }
    let metered_ns = start.elapsed().as_nanos() as f64 / f64::from(runs);

    let start = Instant::now();
    for _ in 0..runs {
        warm.run("tight", &args, ws.bytes_mut()).expect("runs");
    }
    let threaded_ns = start.elapsed().as_nanos() as f64 / f64::from(runs);

    DispatchMeasurement {
        legacy_ns,
        metered_ns,
        threaded_ns,
        instructions,
        fusion,
    }
}
