//! # splitc-bench — benchmark harness for the DAC 2010 reproduction
//!
//! This crate hosts:
//!
//! * one Criterion benchmark per paper artifact (`benches/table1.rs`,
//!   `benches/splitflow.rs`, `benches/regalloc.rs`, `benches/hetero.rs`,
//!   `benches/codesize.rs`, `benches/kpn.rs`), each driving the corresponding
//!   experiment from [`splitc::experiments`] and asserting its headline shape;
//! * the parallel-sweep throughput comparison (`benches/sweep.rs`): the same
//!   kernel × target × repeat matrix swept with 1 worker vs 4 workers over
//!   one shared engine, asserting bit-identical results and reporting the
//!   cells-per-second speedup;
//! * the serving throughput comparison (`benches/serve.rs`): mixed-module
//!   request traffic pushed through the async serving layer with 1 worker vs
//!   4 workers, asserting bit-identical responses and zero request loss, and
//!   reporting requests-per-second;
//! * the `report` binary, which regenerates the paper-style tables at full
//!   problem sizes (`cargo run -p splitc-bench --bin report -- all`) and,
//!   with `--json`, the machine-readable sweep + serving perf trajectory.
//!
//! The measured quantity inside each experiment is *simulated cycles* on the
//! virtual targets, which is deterministic; Criterion's wall-clock numbers
//! only track the cost of running the reproduction pipeline itself.

/// Default element count for quick benchmark runs (the report binary uses the
/// paper-scale default of 4096 from `splitc_workloads::DEFAULT_N`).
pub const BENCH_N: usize = 512;

pub mod dispatch;
