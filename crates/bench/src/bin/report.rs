//! Regenerate the paper-style tables of the DAC 2010 reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p splitc-bench --bin report -- [all|table1|splitflow|regalloc|hetero|codesize|kpn] [n] [--jobs N]
//! ```
//!
//! `n` is the number of elements per kernel invocation (default 4096, as in
//! the experiment index of `DESIGN.md`). `--jobs N` fans the measurement
//! matrices of the table1, splitflow and hetero experiments across N worker
//! threads (`--jobs 0` = one per host core); results are bit-identical to
//! the sequential run, so parallelism only changes wall-clock time.

use splitc::experiments::{codesize, hetero, kpn, regalloc, splitflow, table1};
use splitc::splitc_runtime::Platform;
use splitc::splitc_targets::TargetDesc;
use std::process::ExitCode;

fn print_table1(n: usize, jobs: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}",
        table1::run_with(n, &TargetDesc::table1_targets(), jobs)?.render()
    );
    Ok(())
}

fn print_splitflow(n: usize, jobs: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", splitflow::run_with(n, &[], jobs)?.render());
    Ok(())
}

fn print_regalloc(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", regalloc::run(n)?.render());
    Ok(())
}

fn print_hetero(n: usize, jobs: usize) -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [n / 64, n / 16, n / 4, n, n * 4, n * 16];
    println!("{}", hetero::run_with("saxpy_f32", &sizes, jobs)?.render());
    Ok(())
}

fn print_codesize() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", codesize::run()?.render());
    Ok(())
}

fn print_kpn(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::cell_blade(3);
    println!("{}", kpn::run(&platform, n, 32)?.render());
    let phone = Platform::phone();
    println!("{}", kpn::run(&phone, n, 32)?.render());
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = match args.iter().position(|a| a == "--jobs") {
        Some(pos) if pos + 1 < args.len() => {
            let value = args.remove(pos + 1);
            args.remove(pos);
            match value.parse() {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("bad --jobs value `{value}`: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Some(_) => {
            eprintln!("--jobs requires a value");
            return ExitCode::from(2);
        }
        None => 1,
    };
    let what = args.first().map(String::as_str).unwrap_or("all");
    let n: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(splitc::splitc_workloads::DEFAULT_N);

    let result = match what {
        "table1" => print_table1(n, jobs),
        "splitflow" => print_splitflow(n, jobs),
        "regalloc" => print_regalloc(n),
        "hetero" => print_hetero(n, jobs),
        "codesize" => print_codesize(),
        "kpn" => print_kpn(n),
        "all" => print_table1(n, jobs)
            .and_then(|()| print_splitflow(n, jobs))
            .and_then(|()| print_regalloc(n))
            .and_then(|()| print_hetero(n, jobs))
            .and_then(|()| print_codesize())
            .and_then(|()| print_kpn(n)),
        other => {
            eprintln!(
                "unknown report `{other}`; expected one of: all, table1, splitflow, regalloc, hetero, codesize, kpn"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("report failed: {e}");
            ExitCode::FAILURE
        }
    }
}
