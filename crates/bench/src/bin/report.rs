//! Regenerate the paper-style tables of the DAC 2010 reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p splitc-bench --bin report -- [all|table1|splitflow|regalloc|hetero|codesize|kpn] [n]
//! ```
//!
//! `n` is the number of elements per kernel invocation (default 4096, as in
//! the experiment index of `DESIGN.md`).

use splitc::experiments::{codesize, hetero, kpn, regalloc, splitflow, table1};
use splitc::splitc_runtime::Platform;
use std::process::ExitCode;

fn print_table1(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", table1::run(n)?.render());
    Ok(())
}

fn print_splitflow(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", splitflow::run(n, &[])?.render());
    Ok(())
}

fn print_regalloc(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", regalloc::run(n)?.render());
    Ok(())
}

fn print_hetero(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [n / 64, n / 16, n / 4, n, n * 4, n * 16];
    println!("{}", hetero::run("saxpy_f32", &sizes)?.render());
    Ok(())
}

fn print_codesize() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", codesize::run()?.render());
    Ok(())
}

fn print_kpn(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::cell_blade(3);
    println!("{}", kpn::run(&platform, n, 32)?.render());
    let phone = Platform::phone();
    println!("{}", kpn::run(&phone, n, 32)?.render());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let n: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(splitc::splitc_workloads::DEFAULT_N);

    let result = match what {
        "table1" => print_table1(n),
        "splitflow" => print_splitflow(n),
        "regalloc" => print_regalloc(n),
        "hetero" => print_hetero(n),
        "codesize" => print_codesize(),
        "kpn" => print_kpn(n),
        "all" => print_table1(n)
            .and_then(|()| print_splitflow(n))
            .and_then(|()| print_regalloc(n))
            .and_then(|()| print_hetero(n))
            .and_then(|()| print_codesize())
            .and_then(|()| print_kpn(n)),
        other => {
            eprintln!(
                "unknown report `{other}`; expected one of: all, table1, splitflow, regalloc, hetero, codesize, kpn"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("report failed: {e}");
            ExitCode::FAILURE
        }
    }
}
