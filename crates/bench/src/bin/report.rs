//! Regenerate the paper-style tables of the DAC 2010 reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p splitc-bench --bin report -- [all|table1|splitflow|regalloc|hetero|codesize|kpn] [n] [--jobs N] [--json <path>]
//! ```
//!
//! `n` is the number of elements per kernel invocation (default 4096, as in
//! the experiment index of `DESIGN.md`). `--jobs N` fans the measurement
//! matrices of the table1, splitflow and hetero experiments across N worker
//! threads (`--jobs 0` = one per host core); results are bit-identical to
//! the sequential run, so parallelism only changes wall-clock time.
//!
//! `--json <path>` additionally runs the machine-readable perf trajectory
//! and writes it to `path` — by convention `BENCH_sweep.json` at the repo
//! root, so successive PRs accumulate comparable numbers. The trajectory has
//! four sections: the sweep rows (table1 kernels × the full preset target
//! catalogue, sequential and parallel: ns/iter, per-cell simulated cycles,
//! engine cache stats); the `timing` rows (the same kernels × targets run
//! under the flat cost tier and the in-order pipeline tier on one shared
//! deployment: instructions, cycles and CPI per tier, plus the pipeline's
//! stall/mispredict/predicted counters — checksums asserted bit-identical
//! across tiers before a row is emitted); the `serving` rows (the same mixed-module traffic
//! pushed through the sharded request queue at 1 and 4 workers, a
//! 10⁵-request soak, and a chaos soak under the stock seeded fault plan:
//! requests/s, queue high water, queue-wait and execute latency quantiles,
//! batch-size distribution, fault-tolerance counters — deadline expiries,
//! cancellations, retries, breaker lifecycle — and aggregated engine-cache
//! counters); the `store` row (the catalogue load run twice against one
//! persistent artifact-store directory — cold with the store emptied, then
//! warm in a fresh server that loads every key from disk instead of
//! compiling — recording the cold-vs-warm time-to-first-response delta,
//! the split-compilation saving a process restart no longer pays); and the `dispatch` row
//! (the tight-loop kernel of `benches/simulator.rs` timed on the legacy
//! walk, the metered enum loop and the threaded handler table: ns/run,
//! ns/instruction, the speedup of each step, and the macro-op fusion and
//! welding hit counts).

use splitc::experiments::{codesize, hetero, kpn, regalloc, splitflow, table1};
use splitc::serve::{
    default_chaos_plan, run_chaos, run_load, run_soak, run_store_bench, Histogram, LoadConfig,
    LoadReport, ServerStats, StoreBenchReport, EMPTY_QUANTILE,
};
use splitc::splitc_jit::JitOptions;
use splitc::splitc_opt::{optimize_module, OptOptions};
use splitc::splitc_runtime::Platform;
use splitc::splitc_targets::TargetDesc;
use splitc::splitc_targets::TimingKind;
use splitc::splitc_workloads::{module_for, table1_kernels};
use splitc::sweep::{sweep_engine, SweepConfig, SweepResult};
use splitc::{checksum, prepare, ExecutionEngine, FramePool, Workspace};
use splitc_bench::dispatch;
use std::process::ExitCode;
use std::time::Instant;

fn print_table1(n: usize, jobs: usize) -> Result<(), Box<dyn std::error::Error>> {
    // One sweep over the whole preset catalogue — the RISC-V and GPU
    // families included — rendered twice: first the paper's three columns
    // (a pure subset of the measured cells, no re-compilation or re-run),
    // then the full table showing how the same portable module lands on
    // machines the paper never saw.
    let full = table1::run_with(n, &TargetDesc::presets(), jobs)?;
    let paper: Vec<String> = TargetDesc::table1_targets()
        .iter()
        .map(|t| t.name.clone())
        .collect();
    let paper_view = table1::Table1 {
        n: full.n,
        targets: paper.clone(),
        rows: full
            .rows
            .iter()
            .map(|r| table1::Table1Row {
                kernel: r.kernel.clone(),
                cells: r
                    .cells
                    .iter()
                    .filter(|c| paper.contains(&c.target))
                    .cloned()
                    .collect(),
            })
            .collect(),
        cache: full.cache,
        online_work: full.online_work,
        jobs: full.jobs,
    };
    println!("{}", paper_view.render());
    println!("Full target catalogue (same sweep, same deployment):");
    println!("{}", full.render());
    Ok(())
}

fn print_splitflow(n: usize, jobs: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", splitflow::run_with(n, &[], jobs)?.render());
    Ok(())
}

fn print_regalloc(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", regalloc::run(n)?.render());
    Ok(())
}

fn print_hetero(n: usize, jobs: usize) -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [n / 64, n / 16, n / 4, n, n * 4, n * 16];
    println!("{}", hetero::run_with("saxpy_f32", &sizes, jobs)?.render());
    Ok(())
}

fn print_codesize() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", codesize::run()?.render());
    Ok(())
}

fn print_kpn(n: usize) -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::cell_blade(3);
    println!("{}", kpn::run(&platform, n, 32)?.render());
    let phone = Platform::phone();
    println!("{}", kpn::run(&phone, n, 32)?.render());
    Ok(())
}

/// Repeats per sweep cell in the `--json` perf trajectory.
const JSON_SWEEP_REPEATS: usize = 3;

/// One timed sweep for the perf trajectory: deploy a fresh engine (cold
/// compiles are part of the measured cost, as in `benches/sweep.rs`) and
/// sweep the table1 kernels over the *full preset catalogue* with `jobs`
/// workers, so the trajectory accumulates rows for every backend family
/// (the RISC-V and GPU targets included).
///
/// Not `sweep_kernels`: that helper would put the *offline* step (parse,
/// lower, optimize) inside the timed region, and the trajectory — like
/// `benches/sweep.rs` — measures only the online deploy-and-run cost.
fn timed_sweep(n: usize, jobs: usize) -> Result<(SweepResult, f64), Box<dyn std::error::Error>> {
    let kernels = table1_kernels();
    let targets = TargetDesc::presets();
    let mut module = module_for(&kernels, "bench-sweep")?;
    optimize_module(&mut module, &OptOptions::full());
    let engine = ExecutionEngine::new(module);
    let cfg = SweepConfig::new(n)
        .with_repeats(JSON_SWEEP_REPEATS)
        .with_jobs(jobs);
    let start = Instant::now();
    let result = sweep_engine(&engine, &kernels, &targets, &cfg)?;
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    Ok((result, elapsed_ns))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one sweep as a JSON object: headline ns/iter, cache counters, and
/// the deterministic per-(kernel, target) cycles of the first repeat.
fn sweep_to_json(jobs: usize, result: &SweepResult, elapsed_ns: f64) -> String {
    let cells = result.cells.len().max(1);
    let ns_per_iter = elapsed_ns / cells as f64;
    let mut detail = String::new();
    for (i, cell) in result.cells.iter().filter(|c| c.repeat == 0).enumerate() {
        if i > 0 {
            detail.push_str(",\n");
        }
        detail.push_str(&format!(
            "        {{\"kernel\": \"{}\", \"target\": \"{}\", \"cycles\": {}, \"scaled_cycles\": {:.1}, \"checksum\": \"{:016x}\"}}",
            json_escape(&cell.kernel),
            json_escape(&cell.target),
            cell.cycles,
            cell.scaled_cycles,
            cell.checksum,
        ));
    }
    format!(
        "    {{\n      \"jobs\": {jobs},\n      \"cells\": {},\n      \"elapsed_ns\": {:.0},\n      \"ns_per_iter\": {:.1},\n      \"total_cycles\": {},\n      \"cache\": {{\"compiles\": {}, \"hits\": {}, \"evictions\": {}}},\n      \"online_work\": {},\n      \"cells_detail\": [\n{}\n      ]\n    }}",
        result.cells.len(),
        elapsed_ns,
        ns_per_iter,
        result.total_cycles(),
        result.cache.compiles,
        result.cache.hits,
        result.cache.evictions,
        result.online_work,
        detail,
    )
}

/// Per-(kernel, target) CPI rows comparing the flat cost tier against the
/// in-order pipeline tier: one shared deployment (the engine compiles one
/// variant per tier — the timing kind feeds the target fingerprint), the same
/// seeded inputs on both sides, and the checksums asserted bit-identical
/// before a row is emitted, so the rows can only ever differ in timing.
fn timing_to_json(n: usize) -> Result<String, Box<dyn std::error::Error>> {
    let kernels = table1_kernels();
    let mut module = module_for(&kernels, "bench-timing")?;
    optimize_module(&mut module, &OptOptions::full());
    let engine = ExecutionEngine::new(module);
    let options = JitOptions::split();
    let mut pool = FramePool::new();
    let mut ws = Workspace::sized_for(n);
    let mut rows = Vec::new();
    for kernel in &kernels {
        for target in TargetDesc::presets() {
            let pipe_target = target.clone().with_timing(TimingKind::InOrder);
            ws.reset();
            let inputs = prepare(kernel.name, n, 0, &mut ws);
            let flat = engine.run_pooled(
                &target,
                &options,
                kernel.name,
                &inputs.args,
                ws.bytes_mut(),
                &mut pool,
            )?;
            let flat_sum = checksum(flat.result, &inputs, &ws);
            ws.reset();
            let inputs = prepare(kernel.name, n, 0, &mut ws);
            let pipe = engine.run_pooled(
                &pipe_target,
                &options,
                kernel.name,
                &inputs.args,
                ws.bytes_mut(),
                &mut pool,
            )?;
            let pipe_sum = checksum(pipe.result, &inputs, &ws);
            assert_eq!(
                flat_sum, pipe_sum,
                "{} on {}: timing tiers must be architecturally bit-identical",
                kernel.name, target.name
            );
            let inst = flat.stats.instructions.max(1) as f64;
            rows.push(format!(
                "    {{\"kernel\": \"{}\", \"target\": \"{}\", \"instructions\": {}, \"checksum\": \"{:016x}\", \"flat\": {{\"cycles\": {}, \"cpi\": {:.3}}}, \"pipelined\": {{\"cycles\": {}, \"cpi\": {:.3}, \"stalls\": {}, \"mispredicts\": {}, \"predicted\": {}}}}}",
                json_escape(kernel.name),
                json_escape(&target.name),
                flat.stats.instructions,
                flat_sum,
                flat.stats.cycles,
                flat.stats.cycles as f64 / inst,
                pipe.stats.cycles,
                pipe.stats.cycles as f64 / inst,
                pipe.stats.stalls,
                pipe.stats.mispredicts,
                pipe.stats.predicted,
            ));
        }
    }
    Ok(rows.join(",\n"))
}

/// Requests per serving row in the `--json` perf trajectory: one request per
/// (kernel, target) pair per repeat, matching the sweep rows' coverage.
const JSON_SERVE_REPEATS: usize = 3;

/// Requests in the soak serving row: large enough that the latency
/// quantiles (p999 included) rest on a statistically meaningful sample and
/// the steady-state batching behaviour shows up, small enough to keep the
/// trajectory regeneration under a few seconds.
const JSON_SOAK_REQUESTS: usize = 100_000;

/// Requests in the chaos serving row: enough traffic to drive the stock
/// fault plan's breaker through its full open → half-open → closed
/// lifecycle with margin, while keeping regeneration fast.
const JSON_CHAOS_REQUESTS: usize = 20_000;

/// One quantile as a JSON value: the nanosecond count, or `null` when the
/// distribution is empty ([`EMPTY_QUANTILE`] must never leak into the JSON
/// as a u64 — downstream tooling would read it as a 585-year latency).
fn quantile_to_json(q: u64) -> String {
    if q == EMPTY_QUANTILE {
        "null".to_owned()
    } else {
        q.to_string()
    }
}

/// One latency histogram as a JSON object: count, mean and the SLO
/// quantiles, all in nanoseconds (quantiles are `null` when empty).
fn histogram_to_json(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"mean_ns\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
        h.count(),
        h.mean(),
        quantile_to_json(h.p50()),
        quantile_to_json(h.p99()),
        quantile_to_json(h.p999()),
        h.max(),
    )
}

/// Render one serving run as a JSON object: requests/s, the server's queue
/// and accounting counters, the queue-wait/execute latency quantiles, the
/// batch-size distribution, the fault-tolerance counters (deadlines,
/// retries, breaker lifecycle, injected faults) and the aggregated
/// engine-cache counters.
fn serving_to_json(
    mode: &str,
    workers: usize,
    requests: usize,
    elapsed_ns: u128,
    requests_per_sec: f64,
    stats: &ServerStats,
) -> String {
    let batches = &stats.batch_sizes;
    format!(
        "    {{\n      \"mode\": \"{mode}\",\n      \"workers\": {workers},\n      \"requests\": {requests},\n      \"elapsed_ns\": {:.0},\n      \"requests_per_sec\": {:.1},\n      \"queue_high_water\": {},\n      \"rejected\": {},\n      \"rejected_shutdown\": {},\n      \"queue_wait\": {},\n      \"execute\": {},\n      \"batches\": {{\"served\": {}, \"mean_size\": {:.3}, \"max_size\": {}}},\n      \"faults\": {{\"expired\": {}, \"cancelled\": {}, \"retried\": {}, \"degraded\": {}, \"failed_fast\": {}, \"injected\": {}, \"breaker_opened\": {}, \"breaker_half_opened\": {}, \"breaker_closed\": {}}},\n      \"retry_attempts\": {},\n      \"engines\": {},\n      \"cache\": {{\"compiles\": {}, \"hits\": {}, \"evictions\": {}, \"disk_hits\": {}, \"disk_misses\": {}, \"disk_rejects\": {}}},\n      \"online_work\": {}\n    }}",
        elapsed_ns as f64,
        requests_per_sec,
        stats.queue_high_water,
        stats.rejected,
        stats.rejected_shutdown,
        histogram_to_json(&stats.queue_wait),
        histogram_to_json(&stats.execute),
        batches.count(),
        batches.mean(),
        batches.max(),
        stats.expired,
        stats.cancelled,
        stats.retried,
        stats.degraded,
        stats.failed_fast,
        stats.faults_injected,
        stats.breaker_opened,
        stats.breaker_half_opened,
        stats.breaker_closed,
        histogram_to_json(&stats.retry_attempts),
        stats.engines,
        stats.cache.compiles,
        stats.cache.hits,
        stats.cache.evictions,
        stats.cache.disk_hits,
        stats.cache.disk_misses,
        stats.cache.disk_rejects,
        stats.online_work,
    )
}

/// Render the cold-vs-warm artifact-store benchmark as a JSON object: one
/// pass object per temperature (time-to-first-response, total wall clock,
/// throughput, compile and disk counters) plus the entry count and the
/// headline TTFR speedup a restart gains from the persistent store.
fn store_to_json(report: &StoreBenchReport) -> String {
    let pass = |r: &LoadReport| {
        format!(
            "{{\"requests\": {}, \"ttfr_ns\": {}, \"elapsed_ns\": {}, \"requests_per_sec\": {:.1}, \"compiles\": {}, \"disk_hits\": {}, \"disk_misses\": {}, \"disk_rejects\": {}}}",
            r.requests,
            r.ttfr_ns,
            r.elapsed_ns,
            r.requests_per_sec,
            r.stats.cache.compiles,
            r.stats.cache.disk_hits,
            r.stats.cache.disk_misses,
            r.stats.cache.disk_rejects,
        )
    };
    format!(
        "    {{\n      \"entries\": {},\n      \"cold\": {},\n      \"warm\": {},\n      \"ttfr_speedup\": {:.3}\n    }}",
        report.entries,
        pass(&report.cold),
        pass(&report.warm),
        report.ttfr_speedup(),
    )
}

/// Timed runs per side of the `dispatch` row.
const JSON_DISPATCH_RUNS: u32 = 200;

/// Render the three-way dispatch comparison as a JSON object: ns/run and
/// ns/instruction per execution path, the two step speedups, and the
/// prepared program's fusion/welding hit counts.
fn dispatch_to_json(m: &dispatch::DispatchMeasurement) -> String {
    let per_inst = |ns: f64| ns / m.instructions as f64;
    format!(
        "  {{\n    \"kernel\": \"tight\",\n    \"n\": {},\n    \"runs\": {JSON_DISPATCH_RUNS},\n    \"instructions_per_run\": {},\n    \"legacy_ns_per_run\": {:.0},\n    \"metered_ns_per_run\": {:.0},\n    \"threaded_ns_per_run\": {:.0},\n    \"legacy_ns_per_inst\": {:.3},\n    \"metered_ns_per_inst\": {:.3},\n    \"threaded_ns_per_inst\": {:.3},\n    \"prepared_speedup\": {:.3},\n    \"dispatch_speedup\": {:.3},\n    \"fusion\": {{\"cmp_branch\": {}, \"load_op\": {}, \"indvar\": {}, \"pair\": {}, \"triple\": {}}}\n  }}",
        dispatch::N,
        m.instructions,
        m.legacy_ns,
        m.metered_ns,
        m.threaded_ns,
        per_inst(m.legacy_ns),
        per_inst(m.metered_ns),
        per_inst(m.threaded_ns),
        m.prepared_speedup(),
        m.dispatch_speedup(),
        m.fusion.cmp_branch,
        m.fusion.load_op,
        m.fusion.indvar,
        m.fusion.pair,
        m.fusion.triple,
    )
}

/// Run the perf-trajectory sweeps (sequential and 4-way parallel), the
/// serving loads and the dispatch comparison, and write the machine-readable
/// `BENCH_sweep.json` shape to `path`.
fn write_sweep_json(path: &str, n: usize) -> Result<(), Box<dyn std::error::Error>> {
    let mut sweeps = Vec::new();
    for jobs in [1usize, 4] {
        let (result, elapsed_ns) = timed_sweep(n, jobs)?;
        sweeps.push(sweep_to_json(jobs, &result, elapsed_ns));
    }
    // The serving trajectory: the same kernels and targets as the sweep
    // rows, but as mixed-module request traffic through the sharded queue.
    let kernels = table1_kernels();
    let requests = kernels.len() * TargetDesc::presets().len() * JSON_SERVE_REPEATS;
    let mut serving = Vec::new();
    for workers in [1usize, 4] {
        let report: LoadReport =
            run_load(&LoadConfig::catalogue(n, requests).with_workers(workers))?;
        serving.push(serving_to_json(
            "load",
            report.workers,
            report.requests,
            report.elapsed_ns,
            report.requests_per_sec,
            &report.stats,
        ));
    }
    // The soak row: the same traffic shape held at 10⁵ requests through a
    // bounded in-flight window, each response verified against a reference
    // checksum as it drains — the SLO quantiles of the steady state.
    let soak = run_soak(&LoadConfig::catalogue(n, JSON_SOAK_REQUESTS).with_workers(4))?;
    serving.push(serving_to_json(
        "soak",
        soak.workers,
        soak.requests,
        soak.elapsed_ns,
        soak.requests_per_sec,
        &soak.stats,
    ));
    // The chaos row: the soak's verified traffic under the stock seeded
    // fault plan (injected panics/transients/latency, deadlines on a slice
    // of the requests, one breaker driven open and back closed). The run
    // itself asserts exactly-once answering and exact books; the row
    // records what graceful degradation costs in throughput and tail
    // latency.
    let chaos_cfg = LoadConfig::catalogue(n, JSON_CHAOS_REQUESTS).with_workers(4);
    let chaos_plan = default_chaos_plan(
        chaos_cfg.kernels.len() * chaos_cfg.targets.len(),
        chaos_cfg.seed,
    );
    let chaos = run_chaos(&chaos_cfg, &chaos_plan)?;
    serving.push(serving_to_json(
        "chaos",
        chaos.workers,
        chaos.requests,
        chaos.elapsed_ns,
        chaos.requests_per_sec,
        &chaos.stats,
    ));
    // The store row: the same catalogue traffic against a persistent
    // artifact store, cold then warm. The driver itself asserts the
    // split-compilation contract (warm pass: zero compiles, one disk hit
    // per key, bit-identical checksums); the row records what that is
    // worth in time-to-first-response.
    let store_dir = std::env::temp_dir().join(format!("splitc-bench-store-{}", std::process::id()));
    let store_report = run_store_bench(
        &LoadConfig::catalogue(n, requests).with_workers(4),
        &store_dir,
    )?;
    let store_row = store_to_json(&store_report);
    std::fs::remove_dir_all(&store_dir).ok();
    // The dispatch trajectory: the tight-loop kernel three ways, the
    // headline of `benches/simulator.rs`.
    let dispatch_row = dispatch_to_json(&dispatch::measure(JSON_DISPATCH_RUNS));
    // The timing trajectory: flat vs in-order pipeline CPI per cell.
    let timing_rows = timing_to_json(n)?;
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"schema\": \"splitc-bench-sweep/7\",\n  \"n\": {n},\n  \"repeats\": {JSON_SWEEP_REPEATS},\n  \"host_cores\": {host_cores},\n  \"sweeps\": [\n{}\n  ],\n  \"timing\": [\n{}\n  ],\n  \"serving\": [\n{}\n  ],\n  \"store\": [\n{}\n  ],\n  \"dispatch\": [\n{}\n  ]\n}}\n",
        sweeps.join(",\n"),
        timing_rows,
        serving.join(",\n"),
        store_row,
        dispatch_row,
    );
    std::fs::write(path, json)?;
    println!("wrote perf trajectory to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path: Option<String> = match args.iter().position(|a| a == "--json") {
        Some(pos) if pos + 1 < args.len() => {
            let value = args.remove(pos + 1);
            args.remove(pos);
            Some(value)
        }
        Some(_) => {
            eprintln!("--json requires a path");
            return ExitCode::from(2);
        }
        None => None,
    };
    let jobs: usize = match args.iter().position(|a| a == "--jobs") {
        Some(pos) if pos + 1 < args.len() => {
            let value = args.remove(pos + 1);
            args.remove(pos);
            match value.parse() {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("bad --jobs value `{value}`: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Some(_) => {
            eprintln!("--jobs requires a value");
            return ExitCode::from(2);
        }
        None => 1,
    };
    let what = args.first().map(String::as_str).unwrap_or("all");
    let n: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(splitc::splitc_workloads::DEFAULT_N);

    let result = match what {
        "table1" => print_table1(n, jobs),
        "splitflow" => print_splitflow(n, jobs),
        "regalloc" => print_regalloc(n),
        "hetero" => print_hetero(n, jobs),
        "codesize" => print_codesize(),
        "kpn" => print_kpn(n),
        "all" => print_table1(n, jobs)
            .and_then(|()| print_splitflow(n, jobs))
            .and_then(|()| print_regalloc(n))
            .and_then(|()| print_hetero(n, jobs))
            .and_then(|()| print_codesize())
            .and_then(|()| print_kpn(n)),
        other => {
            eprintln!(
                "unknown report `{other}`; expected one of: all, table1, splitflow, regalloc, hetero, codesize, kpn"
            );
            return ExitCode::from(2);
        }
    };
    let result = result.and_then(|()| match &json_path {
        Some(path) => write_sweep_json(path, n),
        None => Ok(()),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("report failed: {e}");
            ExitCode::FAILURE
        }
    }
}
