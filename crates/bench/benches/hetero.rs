//! Bench E4 — heterogeneous deployment and accelerator-offload crossover.

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::experiments::hetero;
use splitc_bench::BENCH_N;

fn bench_hetero(c: &mut Criterion) {
    let sizes = [BENCH_N / 8, BENCH_N, BENCH_N * 8, BENCH_N * 32];
    let result = hetero::run("saxpy_f32", &sizes).expect("hetero experiment runs");
    println!("\n{}", result.render());

    let mut group = c.benchmark_group("hetero");
    group.sample_size(10);
    group.bench_function("saxpy_size_sweep", |b| {
        b.iter(|| {
            let r = hetero::run("saxpy_f32", &sizes).expect("hetero experiment runs");
            assert!(r.offload_crossover().is_some());
            r.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hetero);
criterion_main!(benches);
