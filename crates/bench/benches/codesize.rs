//! Bench E5 — compactness of the portable deployment format.

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::experiments::codesize;

fn bench_codesize(c: &mut Criterion) {
    let result = codesize::run().expect("codesize experiment runs");
    println!("\n{}", result.render());

    let mut group = c.benchmark_group("codesize");
    group.sample_size(10);
    group.bench_function("full_suite_all_targets", |b| {
        b.iter(|| {
            let r = codesize::run().expect("codesize experiment runs");
            assert!(r.total_native_bytes() > r.bytecode_bytes);
            r.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codesize);
criterion_main!(benches);
