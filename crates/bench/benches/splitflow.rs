//! Bench E2 — the split compilation flow of Figure 1 (offline vs online work).

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::experiments::splitflow::{self, Strategy};
use splitc_bench::BENCH_N;

fn bench_splitflow(c: &mut Criterion) {
    let flow = splitflow::run(BENCH_N, &[]).expect("splitflow experiment runs");
    println!("\n{}", flow.render());

    let mut group = c.benchmark_group("splitflow");
    group.sample_size(10);
    group.bench_function("four_strategies", |b| {
        b.iter(|| {
            let f = splitflow::run(BENCH_N, &[]).expect("splitflow experiment runs");
            assert!(f.mean_speedup(Strategy::Split, Strategy::JitGreedy) > 1.0);
            f.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_splitflow);
criterion_main!(benches);
