//! Bench E1 — regenerate the paper's Table 1 (split automatic vectorization).
//!
//! The interesting output is the rendered table (printed once at start-up);
//! Criterion's timings measure the cost of the full offline+online+simulate
//! pipeline for all six kernels on the three Table 1 machines.

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::experiments::table1;
use splitc_bench::BENCH_N;

fn bench_table1(c: &mut Criterion) {
    let table = table1::run(BENCH_N).expect("table1 experiment runs");
    println!("\n{}", table.render());

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("six_kernels_three_targets", |b| {
        b.iter(|| {
            let t = table1::run(BENCH_N).expect("table1 experiment runs");
            assert!(t.cell("max_u8", "x86-sse").unwrap().speedup() > 2.0);
            t.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
