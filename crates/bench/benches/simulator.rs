//! Bench — threaded dispatch vs the metered enum loop vs the legacy walk.
//!
//! The measurement itself lives in `splitc_bench::dispatch` (shared with the
//! `report` binary's `BENCH_sweep.json` trajectory): the same JIT-compiled
//! tight-loop kernel is executed three ways —
//!
//! * **cold / legacy** — the original `MProgram` block walk, which decodes
//!   (and clones) every instruction on every step, re-validates registers
//!   per instruction, resolves call targets by name and allocates a fresh
//!   frame per call;
//! * **metered** — the pre-decoded `PreparedProgram` stream driven by the
//!   per-instruction enum-match loop (PR 3's hot loop, retained as the
//!   deopt/reference path), with a warm frame pool;
//! * **threaded** — the same prepared program driven through the fn-pointer
//!   handler table with macro-op fusion, adjacent-record welding and
//!   per-region fuel/instruction charges (this PR's hot loop), same pool.
//!
//! Results and `SimStats` are asserted bit-identical across all three before
//! any timing; the headline is the ns-per-run ratio of each successive step.
//! The thresholds (metered ≥1.3× legacy, threaded ≥1.25× metered) are
//! report-only by default (shared CI runners are noisy); set
//! `SIM_BENCH_ASSERT=1` on a quiet host to enforce them. The threaded
//! floor is set below the ~1.35× measured on a quiet host: the 2× stretch
//! target needs per-record body specialization beyond what bit-identical
//! `SimStats` currently allows (see ROADMAP).

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::splitc_targets::{PreparedProgram, PreparedSimulator, Simulator, TargetDesc};
use splitc_bench::dispatch;

/// Timed runs per side.
const RUNS: u32 = 200;

fn bench_simulator(c: &mut Criterion) {
    let m = dispatch::measure(RUNS);
    let (legacy_ns, metered_ns, threaded_ns) = (m.legacy_ns, m.metered_ns, m.threaded_ns);
    let prepared_speedup = m.prepared_speedup();
    let dispatch_speedup = m.dispatch_speedup();
    println!(
        "\nsimulator tight-loop (n = {}): legacy walk = {legacy_ns:.0} ns/run, \
         metered = {metered_ns:.0} ns/run ({prepared_speedup:.2}x), \
         threaded = {threaded_ns:.0} ns/run ({dispatch_speedup:.2}x over metered)",
        dispatch::N
    );
    if std::env::var_os("SIM_BENCH_ASSERT").is_some() {
        assert!(
            prepared_speedup >= 1.3,
            "expected the metered prepared loop >= 1.3x the legacy walk, got {prepared_speedup:.2}x"
        );
        assert!(
            dispatch_speedup >= 1.25,
            "expected threaded dispatch >= 1.25x the metered enum loop, got {dispatch_speedup:.2}x"
        );
    }

    let target = TargetDesc::x86_sse();
    let program = dispatch::compiled_tight_loop(&target);
    let prepared = PreparedProgram::prepare(&program, &target).expect("prepares");
    let (mut ws, args) = dispatch::workspace();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("legacy_walk", |b| {
        b.iter(|| {
            let mut cold = Simulator::new(&program, &target);
            cold.run_legacy("tight", &args, ws.bytes_mut())
                .expect("runs")
        })
    });
    group.bench_function("metered", |b| {
        let mut warm = PreparedSimulator::new(&prepared);
        b.iter(|| {
            warm.run_metered("tight", &args, ws.bytes_mut())
                .expect("runs")
        })
    });
    group.bench_function("threaded", |b| {
        let mut warm = PreparedSimulator::new(&prepared);
        b.iter(|| warm.run("tight", &args, ws.bytes_mut()).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
