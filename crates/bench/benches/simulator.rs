//! Bench — pre-decoded execution vs the legacy per-run walk.
//!
//! The same JIT-compiled tight-loop kernel is executed two ways:
//!
//! * **cold / legacy** — the original `MProgram` block walk, which decodes
//!   (and clones) every instruction on every step, re-validates registers
//!   per instruction, resolves call targets by name and allocates a fresh
//!   frame per call;
//! * **prepared** — a `PreparedProgram` built once at deploy time (flat
//!   instruction stream, resolved offsets/indices, prepare-time register
//!   validation) driven by a reused `PreparedSimulator` whose frame pool is
//!   warm.
//!
//! Results and `SimStats` are asserted bit-identical; the headline is the
//! ns-per-run ratio. The ≥1.3× threshold is report-only by default (shared
//! CI runners are noisy); set `SIM_BENCH_ASSERT=1` on a quiet host to
//! enforce it.

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::splitc_jit::{compile_module, JitOptions};
use splitc::splitc_minic::compile_source;
use splitc::splitc_opt::{optimize_module, OptOptions};
use splitc::splitc_targets::{
    MProgram, MachineValue, PreparedProgram, PreparedSimulator, Simulator, TargetDesc,
};
use splitc::Workspace;
use std::time::Instant;

/// Elements per kernel invocation; enough that the run loop dominates.
const N: usize = 1024;
/// Timed runs per side.
const RUNS: u32 = 200;

/// A branchy integer map + reduce: loads, ALU traffic, compares and a
/// two-sided conditional per element, then a reduction loop — the shape the
/// per-instruction decode overhead of the legacy walk hurts most.
const TIGHT_LOOP: &str = "fn tight(n: i32, x: *i32, y: *i32) -> i32 {
    let acc: i32 = 0;
    for (let i: i32 = 0; i < n; i = i + 1) {
        let v: i32 = x[i];
        let w: i32 = (v * 3 + i) - (v / 7);
        if (w > 64) { y[i] = w - 64; } else { y[i] = 64 - w; }
    }
    for (let k: i32 = 0; k < n; k = k + 1) {
        acc = acc + y[k];
    }
    return acc;
}";

fn compiled_tight_loop(target: &TargetDesc) -> MProgram {
    let mut module = compile_source(TIGHT_LOOP, "simbench").expect("kernel compiles");
    optimize_module(&mut module, &OptOptions::full());
    let (program, _stats) = compile_module(&module, target, &JitOptions::split()).expect("jit");
    program
}

fn workspace() -> (Workspace, [MachineValue; 3]) {
    let mut ws = Workspace::new(1 << 16);
    let x = ws.alloc(4 * N as u64);
    let y = ws.alloc(4 * N as u64);
    let data: Vec<i32> = (0..N as i32).map(|i| (i * 37) % 1000 - 500).collect();
    ws.write_i32s(x, &data);
    let args = [
        MachineValue::Int(N as i64),
        MachineValue::Int(x as i64),
        MachineValue::Int(y as i64),
    ];
    (ws, args)
}

fn bench_simulator(c: &mut Criterion) {
    let target = TargetDesc::x86_sse();
    let program = compiled_tight_loop(&target);
    let prepared = PreparedProgram::prepare(&program, &target).expect("prepares");

    // Correctness gate: both paths must be bit-identical before any timing.
    let (mut ws_a, args) = workspace();
    let (mut ws_b, _) = workspace();
    let mut legacy = Simulator::new(&program, &target);
    let legacy_out = legacy
        .run_legacy("tight", &args, ws_a.bytes_mut())
        .expect("legacy runs");
    let mut sim = PreparedSimulator::new(&prepared);
    let prepared_out = sim
        .run("tight", &args, ws_b.bytes_mut())
        .expect("prepared runs");
    assert_eq!(legacy_out, prepared_out, "results must be bit-identical");
    assert_eq!(
        legacy.stats(),
        sim.stats(),
        "SimStats must be bit-identical"
    );
    assert_eq!(ws_a.bytes(), ws_b.bytes(), "memory must be bit-identical");

    // Headline: ns per run, cold legacy walk vs warm prepared execution.
    let (mut ws, args) = workspace();
    let start = Instant::now();
    for _ in 0..RUNS {
        let mut cold = Simulator::new(&program, &target);
        cold.run_legacy("tight", &args, ws.bytes_mut())
            .expect("runs");
    }
    let legacy_ns = start.elapsed().as_nanos() as f64 / f64::from(RUNS);

    let mut warm = PreparedSimulator::new(&prepared);
    let start = Instant::now();
    for _ in 0..RUNS {
        warm.run("tight", &args, ws.bytes_mut()).expect("runs");
    }
    let prepared_ns = start.elapsed().as_nanos() as f64 / f64::from(RUNS);

    let speedup = legacy_ns / prepared_ns;
    println!(
        "\nsimulator tight-loop (n = {N}): legacy walk = {legacy_ns:.0} ns/run, \
         prepared = {prepared_ns:.0} ns/run  ({speedup:.2}x)"
    );
    if std::env::var_os("SIM_BENCH_ASSERT").is_some() {
        assert!(
            speedup >= 1.3,
            "expected prepared execution >= 1.3x the legacy walk, got {speedup:.2}x"
        );
    }

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("legacy_walk", |b| {
        b.iter(|| {
            let mut cold = Simulator::new(&program, &target);
            cold.run_legacy("tight", &args, ws.bytes_mut())
                .expect("runs")
        })
    });
    group.bench_function("prepared", |b| {
        let mut warm = PreparedSimulator::new(&prepared);
        b.iter(|| warm.run("tight", &args, ws.bytes_mut()).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
