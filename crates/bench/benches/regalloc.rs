//! Bench E3 — split register allocation (spill reduction vs online allocators).

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::experiments::regalloc;
use splitc_bench::BENCH_N;

fn bench_regalloc(c: &mut Criterion) {
    let result = regalloc::run(BENCH_N).expect("regalloc experiment runs");
    println!("\n{}", result.render());

    let mut group = c.benchmark_group("regalloc");
    group.sample_size(10);
    group.bench_function("three_allocators", |b| {
        b.iter(|| {
            let r = regalloc::run(BENCH_N).expect("regalloc experiment runs");
            assert!(r.best_reduction() > 0.0);
            r.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_regalloc);
criterion_main!(benches);
