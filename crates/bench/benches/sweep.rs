//! Bench — parallel sweep throughput: 1 worker vs N workers.
//!
//! The same `K kernels × T targets × R repeats` matrix is swept over one
//! shared engine, first sequentially and then fanned across a worker pool.
//! The cells are bit-identical (asserted below); the only thing parallelism
//! may change is wall-clock throughput, which this bench reports as a
//! cells-per-second ratio.
//!
//! Only the parallel section is timed: the module is compiled and optimized
//! once up front (that offline step is inherently serial and identical for
//! both runs), and each timed run deploys a fresh engine so cold online
//! compiles — which the sharded cache parallelizes too — are part of the
//! measured sweep. The speedup ratio is always printed; set
//! `SWEEP_BENCH_ASSERT=1` on a quiet host with 4+ cores to also *enforce*
//! the 1.5× threshold (left report-only by default so a loaded shared CI
//! runner cannot flake an unrelated PR on a wall-clock threshold).

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::splitc_opt::{optimize_module, OptOptions};
use splitc::splitc_targets::TargetDesc;
use splitc::splitc_vbc::Module;
use splitc::splitc_workloads::{module_for, table1_kernels};
use splitc::sweep::{sweep_engine, SweepConfig};
use splitc::ExecutionEngine;
use splitc_bench::BENCH_N;
use std::time::Instant;

const PARALLEL_JOBS: usize = 4;
const REPEATS: usize = 8;

fn offline_module() -> Module {
    let kernels = table1_kernels();
    let mut module = module_for(&kernels, "sweep-bench").expect("catalogue compiles");
    optimize_module(&mut module, &OptOptions::full());
    module
}

/// Deploy a fresh engine for `module` and time one full matrix sweep with
/// `jobs` workers — over the whole preset catalogue, so the cold compiles
/// and the measured cells cover every backend family (RISC-V and GPU
/// included). Returns (cells per second, checksums).
fn timed_sweep(module: &Module, jobs: usize) -> (f64, Vec<u64>) {
    let kernels = table1_kernels();
    let targets = TargetDesc::presets();
    let cfg = SweepConfig::new(BENCH_N)
        .with_repeats(REPEATS)
        .with_jobs(jobs);
    let engine = ExecutionEngine::new(module.clone());
    let start = Instant::now();
    let result = sweep_engine(&engine, &kernels, &targets, &cfg).expect("sweep runs");
    let elapsed = start.elapsed().as_secs_f64();
    (result.cells.len() as f64 / elapsed, result.checksums())
}

fn bench_sweep(c: &mut Criterion) {
    let module = offline_module();

    // Headline comparison, printed once: sequential vs parallel throughput
    // over identical (asserted) results.
    let (seq_throughput, seq_sums) = timed_sweep(&module, 1);
    let (par_throughput, par_sums) = timed_sweep(&module, PARALLEL_JOBS);
    assert_eq!(
        seq_sums, par_sums,
        "parallel sweep must be bit-identical to the sequential sweep"
    );
    let speedup = par_throughput / seq_throughput;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\nsweep throughput: 1 job = {seq_throughput:.1} cells/s, \
         {PARALLEL_JOBS} jobs = {par_throughput:.1} cells/s  ({speedup:.2}x, {cores} host cores)"
    );
    if std::env::var_os("SWEEP_BENCH_ASSERT").is_some() && cores >= PARALLEL_JOBS {
        assert!(
            speedup > 1.5,
            "expected >1.5x throughput at {PARALLEL_JOBS} jobs on a {cores}-core host, got {speedup:.2}x"
        );
    }

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("jobs_1", |b| b.iter(|| timed_sweep(&module, 1).1.len()));
    group.bench_function("jobs_4", |b| {
        b.iter(|| timed_sweep(&module, PARALLEL_JOBS).1.len())
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
