//! Bench E6 — Kahn-process-network pipelining on heterogeneous platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::experiments::kpn;
use splitc::splitc_runtime::Platform;
use splitc_bench::BENCH_N;

fn bench_kpn(c: &mut Criterion) {
    let platform = Platform::cell_blade(2);
    let result = kpn::run(&platform, BENCH_N, 16).expect("kpn experiment runs");
    println!("\n{}", result.render());

    let mut group = c.benchmark_group("kpn");
    group.sample_size(10);
    group.bench_function("image_pipeline_cell_blade", |b| {
        b.iter(|| {
            let r = kpn::run(&platform, BENCH_N, 16).expect("kpn experiment runs");
            assert!(r.pipeline_speedup() >= 1.0);
            r.mappings.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kpn);
criterion_main!(benches);
