//! Bench — serving throughput: 1 worker vs N workers under mixed-module
//! request traffic.
//!
//! The same request stream (Table 1 kernels, each deployed as its own
//! module, rotating over the full preset target catalogue) is pushed through
//! the async serving layer twice: first with a single worker, then with a
//! pool. Responses are bit-identical whatever the worker count (asserted
//! below via per-request checksums); the only thing the pool may change is
//! requests-per-second, which this bench reports.
//!
//! The measured window covers submission through last response over a fresh
//! server, so cold online compiles — deduplicated per (module, target,
//! options) by the shared engines — are part of the serving cost, exactly as
//! they would be for a freshly deployed service. The speedup ratio is always
//! printed; set `SERVE_BENCH_ASSERT=1` on a quiet host with 4+ cores to also
//! *enforce* that N workers out-serve one (left report-only by default so a
//! loaded shared CI runner cannot flake an unrelated PR on a wall-clock
//! threshold).
//!
//! After the headline comparison, a 10⁵-request soak streams the same
//! traffic shape through a bounded in-flight window, verifying every
//! response against a single-threaded reference checksum as it drains, and
//! prints the SLO quantiles (queue-wait and execute p50/p99/p999) plus the
//! batch-size distribution of the continuous-batching workers. The soak's
//! structural invariants (zero losses, every completion counted in exactly
//! one batch) are always asserted; the wall-clock SLO floors — requests/s
//! and a queue-wait p999 ceiling — are enforced only under
//! `SERVE_BENCH_ASSERT=1` on a 4+-core host, for the same flake-resistance
//! reason as the speedup ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::serve::{run_load, run_soak, LoadConfig, LoadReport};
use splitc_bench::BENCH_N;

const PARALLEL_WORKERS: usize = 4;
const REQUESTS: usize = 162;
/// Soak length: big enough that p999 rests on ~100 tail samples and the
/// steady state dominates the cold compiles, small enough to finish in a
/// few seconds at `BENCH_N`.
const SOAK_REQUESTS: usize = 100_000;
/// Enforced soak floor: a quiet 4-core host serves ~40k req/s at
/// `BENCH_N`, so 2k leaves 20x headroom for runner noise while still
/// catching an order-of-magnitude serving regression.
const SOAK_MIN_REQ_PER_SEC: f64 = 2_000.0;
/// Enforced soak ceiling on queue-wait p999: the quiet-host number is
/// ~3 ms with a 128-request window; 250 ms flags a scheduling pathology
/// (lost wakeups, a stuck shard) without tripping on a loaded runner.
const SOAK_MAX_P999_WAIT_NS: u64 = 250_000_000;

fn load(workers: usize) -> LoadConfig {
    LoadConfig::catalogue(BENCH_N, REQUESTS)
        .with_workers(workers)
        .with_queue_capacity(32)
}

fn run(workers: usize) -> LoadReport {
    run_load(&load(workers)).expect("serving load runs")
}

fn bench_serve(c: &mut Criterion) {
    // Headline comparison, printed once: one worker vs a pool over
    // identical (asserted) per-request results.
    let sequential = run(1);
    let parallel = run(PARALLEL_WORKERS);
    assert_eq!(
        sequential.checksums, parallel.checksums,
        "served responses must be bit-identical whatever the worker count"
    );
    for report in [&sequential, &parallel] {
        assert_eq!(report.stats.accepted, REQUESTS as u64);
        assert_eq!(report.stats.completed, REQUESTS as u64, "zero losses");
    }
    let speedup = parallel.requests_per_sec / sequential.requests_per_sec;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\nserving throughput: 1 worker = {:.1} req/s, {PARALLEL_WORKERS} workers = {:.1} req/s  \
         ({speedup:.2}x, {cores} host cores, queue high water {} vs {})",
        sequential.requests_per_sec,
        parallel.requests_per_sec,
        sequential.stats.queue_high_water,
        parallel.stats.queue_high_water,
    );
    if std::env::var_os("SERVE_BENCH_ASSERT").is_some() && cores >= PARALLEL_WORKERS {
        assert!(
            speedup > 1.0,
            "expected {PARALLEL_WORKERS} workers to out-serve 1 on a {cores}-core host, got {speedup:.2}x"
        );
    }

    // The soak: 10⁵ requests streamed through a bounded window, each
    // response checksum-verified against a single-threaded reference run
    // inside run_soak itself. Structural accounting is asserted always.
    let soak_cfg = LoadConfig::catalogue(BENCH_N, SOAK_REQUESTS)
        .with_workers(PARALLEL_WORKERS)
        .with_queue_capacity(32);
    let soak = run_soak(&soak_cfg).expect("serving soak runs");
    println!("{}", soak.render());
    assert_eq!(soak.stats.accepted, SOAK_REQUESTS as u64);
    assert_eq!(soak.stats.completed, SOAK_REQUESTS as u64, "zero losses");
    assert_eq!(
        soak.stats.batch_sizes.sum(),
        soak.stats.completed,
        "every completion is counted in exactly one batch"
    );
    assert_eq!(soak.stats.queue_wait.count(), SOAK_REQUESTS as u64);
    assert_eq!(soak.stats.execute.count(), SOAK_REQUESTS as u64);
    if std::env::var_os("SERVE_BENCH_ASSERT").is_some() && cores >= PARALLEL_WORKERS {
        assert!(
            soak.requests_per_sec >= SOAK_MIN_REQ_PER_SEC,
            "soak throughput floor: expected >= {SOAK_MIN_REQ_PER_SEC:.0} req/s, got {:.1}",
            soak.requests_per_sec
        );
        let p999 = soak.stats.queue_wait.p999();
        assert!(
            p999 <= SOAK_MAX_P999_WAIT_NS,
            "soak queue-wait p999 ceiling: expected <= {SOAK_MAX_P999_WAIT_NS} ns, got {p999} ns"
        );
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("workers_1", |b| b.iter(|| run(1).checksums.len()));
    group.bench_function("workers_4", |b| {
        b.iter(|| run(PARALLEL_WORKERS).checksums.len())
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
