//! Bench — serving throughput: 1 worker vs N workers under mixed-module
//! request traffic.
//!
//! The same request stream (Table 1 kernels, each deployed as its own
//! module, rotating over the full preset target catalogue) is pushed through
//! the async serving layer twice: first with a single worker, then with a
//! pool. Responses are bit-identical whatever the worker count (asserted
//! below via per-request checksums); the only thing the pool may change is
//! requests-per-second, which this bench reports.
//!
//! The measured window covers submission through last response over a fresh
//! server, so cold online compiles — deduplicated per (module, target,
//! options) by the shared engines — are part of the serving cost, exactly as
//! they would be for a freshly deployed service. The speedup ratio is always
//! printed; set `SERVE_BENCH_ASSERT=1` on a quiet host with 4+ cores to also
//! *enforce* that N workers out-serve one (left report-only by default so a
//! loaded shared CI runner cannot flake an unrelated PR on a wall-clock
//! threshold).

use criterion::{criterion_group, criterion_main, Criterion};
use splitc::serve::{run_load, LoadConfig, LoadReport};
use splitc_bench::BENCH_N;

const PARALLEL_WORKERS: usize = 4;
const REQUESTS: usize = 162;

fn load(workers: usize) -> LoadConfig {
    LoadConfig::catalogue(BENCH_N, REQUESTS)
        .with_workers(workers)
        .with_queue_capacity(32)
}

fn run(workers: usize) -> LoadReport {
    run_load(&load(workers)).expect("serving load runs")
}

fn bench_serve(c: &mut Criterion) {
    // Headline comparison, printed once: one worker vs a pool over
    // identical (asserted) per-request results.
    let sequential = run(1);
    let parallel = run(PARALLEL_WORKERS);
    assert_eq!(
        sequential.checksums, parallel.checksums,
        "served responses must be bit-identical whatever the worker count"
    );
    for report in [&sequential, &parallel] {
        assert_eq!(report.stats.accepted, REQUESTS as u64);
        assert_eq!(report.stats.completed, REQUESTS as u64, "zero losses");
    }
    let speedup = parallel.requests_per_sec / sequential.requests_per_sec;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\nserving throughput: 1 worker = {:.1} req/s, {PARALLEL_WORKERS} workers = {:.1} req/s  \
         ({speedup:.2}x, {cores} host cores, queue high water {} vs {})",
        sequential.requests_per_sec,
        parallel.requests_per_sec,
        sequential.stats.queue_high_water,
        parallel.stats.queue_high_water,
    );
    if std::env::var_os("SERVE_BENCH_ASSERT").is_some() && cores >= PARALLEL_WORKERS {
        assert!(
            speedup > 1.0,
            "expected {PARALLEL_WORKERS} workers to out-serve 1 on a {cores}-core host, got {speedup:.2}x"
        );
    }

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("workers_1", |b| b.iter(|| run(1).checksums.len()));
    group.bench_function("workers_4", |b| {
        b.iter(|| run(PARALLEL_WORKERS).checksums.len())
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
