//! # splitc-vbc — the processor-virtualization layer
//!
//! A target-independent, typed, register-based bytecode with **portable vector
//! builtins** and a **split-compilation annotation** framework, reproducing
//! the virtualization layer of Cohen & Rohou, *"Processor Virtualization and
//! Split Compilation for Heterogeneous Multicore Embedded Systems"* (DAC 2010).
//!
//! The crate provides:
//!
//! * the IR itself: [`Module`], [`Function`], [`Block`], [`Inst`], [`Type`];
//! * [`FunctionBuilder`], a convenience API for emitting code;
//! * [`AnnotationSet`] and typed annotation records ([`SpillOrder`],
//!   [`VectorizationSummary`], [`KernelTraits`]) — the channel through which
//!   the offline compiler talks to the JIT;
//! * a [`verify_module`]/[`verify_function`] load-time verifier;
//! * a reference [`Interpreter`] and linear [`Memory`], defining the bytecode
//!   semantics used for differential testing of the JIT;
//! * a compact deployment encoding ([`encode_module`]/[`decode_module`]).
//!
//! # Example
//!
//! Build, verify, encode and execute a tiny function:
//!
//! ```
//! use splitc_vbc::{
//!     decode_module, encode_module, verify_module, BinOp, FunctionBuilder, Interpreter,
//!     Memory, Module, ScalarType, Type, Value,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = FunctionBuilder::new(
//!     "axpb",
//!     &[Type::Scalar(ScalarType::F32), Type::Scalar(ScalarType::F32)],
//!     Some(Type::Scalar(ScalarType::F32)),
//! );
//! let a = b.param(0);
//! let x = b.param(1);
//! let two = b.const_float(ScalarType::F32, 2.0);
//! let ax = b.bin(BinOp::Mul, ScalarType::F32, a, x);
//! let r = b.bin(BinOp::Add, ScalarType::F32, ax, two);
//! b.ret(Some(r));
//!
//! let mut module = Module::new("demo");
//! module.add_function(b.finish());
//! verify_module(&module)?;
//!
//! let shipped = encode_module(&module);
//! let received = decode_module(&shipped)?;
//!
//! let mut interp = Interpreter::new(&received);
//! let mut mem = Memory::new(64);
//! let out = interp.run("axpb", &[Value::Float(3.0), Value::Float(4.0)], &mut mem)?;
//! assert_eq!(out, Some(Value::Float(14.0)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod annotations;
mod builder;
mod encode;
mod function;
mod inst;
mod interp;
mod module;
mod pretty;
mod types;
mod verify;

pub use annotations::{
    keys, AnnotationSet, AnnotationValue, KernelTraits, SpillOrder, VectorizationSummary,
    VectorizedLoop,
};
pub use builder::FunctionBuilder;
pub use encode::{
    decode_module, encode_module, encoded_size, DecodeError, Reader, Writer, MAGIC, VERSION,
};
pub use function::{Block, Function};
pub use inst::{BinOp, BlockId, CmpOp, Immediate, Inst, ReduceOp, UnOp, VReg};
pub use interp::{
    eval_bin, eval_cast, eval_cmp, normalize_int, ExecError, ExecStats, Interpreter, Memory, Value,
    DEFAULT_FUEL, DEFAULT_VECTOR_WIDTH_BYTES,
};
pub use module::Module;
pub use pretty::format_inst;
pub use types::{ScalarType, Type};
pub use verify::{verify_function, verify_module, VerifyError};
