//! Scalar and vector types of the virtual bytecode.
//!
//! The type system is deliberately small: the machine-level scalar types that a
//! C front end needs, plus *portable* vector types whose lane count is **not**
//! fixed in the bytecode — it is chosen by the online compiler for the concrete
//! target (this is the key enabler of split vectorization, Table 1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Machine-level scalar types representable in the bytecode.
///
/// `Ptr` is an abstract byte address into the process' linear memory; its width
/// is 64 bits in the reference interpreter and in all simulated targets.
///
/// # Examples
///
/// ```
/// use splitc_vbc::ScalarType;
///
/// assert_eq!(ScalarType::U8.size_bytes(), 1);
/// assert!(ScalarType::F32.is_float());
/// assert!(ScalarType::I16.is_signed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ScalarType {
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// Abstract pointer (byte offset into linear memory).
    Ptr,
}

impl ScalarType {
    /// All scalar types, useful for exhaustive property tests.
    pub const ALL: [ScalarType; 11] = [
        ScalarType::I8,
        ScalarType::I16,
        ScalarType::I32,
        ScalarType::I64,
        ScalarType::U8,
        ScalarType::U16,
        ScalarType::U32,
        ScalarType::U64,
        ScalarType::F32,
        ScalarType::F64,
        ScalarType::Ptr,
    ];

    /// Size of one value of this type in bytes.
    pub fn size_bytes(self) -> u64 {
        match self {
            ScalarType::I8 | ScalarType::U8 => 1,
            ScalarType::I16 | ScalarType::U16 => 2,
            ScalarType::I32 | ScalarType::U32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::U64 | ScalarType::F64 | ScalarType::Ptr => 8,
        }
    }

    /// `true` for `F32` and `F64`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Canonicalize a float value for this scalar type: `F32` rounds to
    /// single precision, every other type passes the value through.
    ///
    /// This is the one definition of the "an F32-typed value is always
    /// f32-representable" invariant. Constant producers (the bytecode
    /// builder) and constant consumers (the interpreter, the JIT's immediate
    /// lowering) all call it — an unrounded double reaching only *some*
    /// paths makes scalar and SIMD executions of the same program differ by
    /// an ULP.
    pub fn canonicalize_float(self, value: f64) -> f64 {
        if self == ScalarType::F32 {
            f64::from(value as f32)
        } else {
            value
        }
    }

    /// `true` for any integer or pointer type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// `true` for signed integer types.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            ScalarType::I8 | ScalarType::I16 | ScalarType::I32 | ScalarType::I64
        )
    }

    /// `true` for unsigned integer types (pointers count as unsigned).
    pub fn is_unsigned(self) -> bool {
        self.is_int() && !self.is_signed()
    }

    /// Number of lanes of this element type that fit in a vector register of
    /// `width_bytes` bytes (the paper's portable builtins leave this to the JIT).
    ///
    /// # Panics
    ///
    /// Panics if `width_bytes` is smaller than the element size.
    pub fn lanes_for_width(self, width_bytes: u64) -> u64 {
        assert!(
            width_bytes >= self.size_bytes(),
            "vector width {width_bytes} smaller than element size"
        );
        width_bytes / self.size_bytes()
    }

    /// Short lowercase mnemonic used by the textual listing (`i32`, `f64`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::U8 => "u8",
            ScalarType::U16 => "u16",
            ScalarType::U32 => "u32",
            ScalarType::U64 => "u64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
            ScalarType::Ptr => "ptr",
        }
    }

    /// Parse a mnemonic produced by [`ScalarType::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<ScalarType> {
        ScalarType::ALL.iter().copied().find(|t| t.mnemonic() == s)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A bytecode value type: either a scalar or a *portable* vector of scalars.
///
/// A `Vector(elem)` has no lane count: the online compiler picks the widest
/// vector the target supports (or scalarizes when there is no SIMD unit).
///
/// # Examples
///
/// ```
/// use splitc_vbc::{ScalarType, Type};
///
/// let v = Type::Vector(ScalarType::U8);
/// assert!(v.is_vector());
/// assert_eq!(v.elem(), ScalarType::U8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Type {
    /// A single scalar value.
    Scalar(ScalarType),
    /// A target-width vector of scalar elements.
    Vector(ScalarType),
}

impl Type {
    /// The element type: the scalar itself, or the vector's lane type.
    pub fn elem(self) -> ScalarType {
        match self {
            Type::Scalar(s) | Type::Vector(s) => s,
        }
    }

    /// `true` if this is a vector type.
    pub fn is_vector(self) -> bool {
        matches!(self, Type::Vector(_))
    }

    /// `true` if this is a scalar type.
    pub fn is_scalar(self) -> bool {
        matches!(self, Type::Scalar(_))
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Self {
        Type::Scalar(s)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector(s) => write!(f, "v<{s}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_machine_sizes() {
        assert_eq!(ScalarType::I8.size_bytes(), 1);
        assert_eq!(ScalarType::U16.size_bytes(), 2);
        assert_eq!(ScalarType::I32.size_bytes(), 4);
        assert_eq!(ScalarType::F32.size_bytes(), 4);
        assert_eq!(ScalarType::U64.size_bytes(), 8);
        assert_eq!(ScalarType::F64.size_bytes(), 8);
        assert_eq!(ScalarType::Ptr.size_bytes(), 8);
    }

    #[test]
    fn signedness_partition() {
        for t in ScalarType::ALL {
            if t.is_float() {
                assert!(!t.is_signed());
                assert!(!t.is_unsigned());
            } else {
                assert!(t.is_signed() ^ t.is_unsigned(), "{t:?}");
            }
        }
    }

    #[test]
    fn lanes_for_16_byte_vector() {
        assert_eq!(ScalarType::U8.lanes_for_width(16), 16);
        assert_eq!(ScalarType::U16.lanes_for_width(16), 8);
        assert_eq!(ScalarType::F32.lanes_for_width(16), 4);
        assert_eq!(ScalarType::F64.lanes_for_width(16), 2);
    }

    #[test]
    #[should_panic(expected = "smaller than element size")]
    fn lanes_rejects_too_narrow_width() {
        let _ = ScalarType::F64.lanes_for_width(4);
    }

    #[test]
    fn mnemonic_round_trip() {
        for t in ScalarType::ALL {
            assert_eq!(ScalarType::from_mnemonic(t.mnemonic()), Some(t));
        }
        assert_eq!(ScalarType::from_mnemonic("i128"), None);
    }

    #[test]
    fn type_display_and_elem() {
        assert_eq!(Type::Scalar(ScalarType::I32).to_string(), "i32");
        assert_eq!(Type::Vector(ScalarType::F32).to_string(), "v<f32>");
        assert_eq!(Type::Vector(ScalarType::F32).elem(), ScalarType::F32);
        assert!(Type::Vector(ScalarType::F32).is_vector());
        assert!(Type::Scalar(ScalarType::F32).is_scalar());
    }
}
