//! Structural and type verification of bytecode.
//!
//! The verifier is the bytecode's "load-time check": the offline compiler runs
//! it before shipping a module and the JIT runs it before lowering, mirroring
//! the verification role that the paper assigns to the offline step of
//! traditional bytecode tool chains (Section 2.2).

use crate::function::Function;
use crate::inst::{BlockId, Inst, VReg};
use crate::module::Module;
use crate::types::{ScalarType, Type};
use std::error::Error;
use std::fmt;

/// An error found while verifying a function or module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block is empty or does not end with a terminator.
    MissingTerminator {
        /// Offending function.
        function: String,
        /// Offending block.
        block: BlockId,
    },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        /// Offending function.
        function: String,
        /// Offending block.
        block: BlockId,
        /// Index of the offending instruction within the block.
        index: usize,
    },
    /// A branch or jump targets a block that does not exist.
    BadBlockTarget {
        /// Offending function.
        function: String,
        /// Offending block.
        block: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// An instruction references a register that was never allocated.
    BadRegister {
        /// Offending function.
        function: String,
        /// Offending block.
        block: BlockId,
        /// The out-of-range register.
        reg: VReg,
    },
    /// An operand or destination has the wrong type.
    TypeMismatch {
        /// Offending function.
        function: String,
        /// Offending block.
        block: BlockId,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A call references a function that is not part of the module.
    UnknownCallee {
        /// Calling function.
        function: String,
        /// Name of the missing callee.
        callee: String,
    },
    /// A call passes the wrong number of arguments.
    BadArity {
        /// Calling function.
        function: String,
        /// Callee name.
        callee: String,
        /// Arguments expected by the callee.
        expected: usize,
        /// Arguments supplied at the call site.
        found: usize,
    },
    /// The function returns a value but `ret` is missing one (or vice versa).
    ReturnMismatch {
        /// Offending function.
        function: String,
        /// Offending block.
        block: BlockId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::MissingTerminator { function, block } => {
                write!(f, "function {function}: block {block} has no terminator")
            }
            VerifyError::EarlyTerminator {
                function,
                block,
                index,
            } => write!(
                f,
                "function {function}: block {block} has a terminator at position {index} before the end"
            ),
            VerifyError::BadBlockTarget {
                function,
                block,
                target,
            } => write!(
                f,
                "function {function}: block {block} branches to nonexistent {target}"
            ),
            VerifyError::BadRegister {
                function,
                block,
                reg,
            } => write!(
                f,
                "function {function}: block {block} references unallocated register {reg}"
            ),
            VerifyError::TypeMismatch {
                function,
                block,
                detail,
            } => write!(f, "function {function}: block {block}: {detail}"),
            VerifyError::UnknownCallee { function, callee } => {
                write!(f, "function {function}: call to unknown function {callee}")
            }
            VerifyError::BadArity {
                function,
                callee,
                expected,
                found,
            } => write!(
                f,
                "function {function}: call to {callee} passes {found} arguments, expected {expected}"
            ),
            VerifyError::ReturnMismatch { function, block } => write!(
                f,
                "function {function}: block {block}: return value does not match the signature"
            ),
        }
    }
}

impl Error for VerifyError {}

fn expect_type(
    f: &Function,
    block: BlockId,
    reg: VReg,
    expected: Type,
    what: &str,
) -> Result<(), VerifyError> {
    let actual = f.vreg_type(reg);
    if actual != expected {
        return Err(VerifyError::TypeMismatch {
            function: f.name.clone(),
            block,
            detail: format!("{what} {reg} has type {actual}, expected {expected}"),
        });
    }
    Ok(())
}

fn check_regs(f: &Function, block: BlockId, inst: &Inst) -> Result<(), VerifyError> {
    let limit = f.num_vregs() as u32;
    let mut regs = inst.uses();
    if let Some(d) = inst.dst() {
        regs.push(d);
    }
    for r in regs {
        if r.0 >= limit {
            return Err(VerifyError::BadRegister {
                function: f.name.clone(),
                block,
                reg: r,
            });
        }
    }
    Ok(())
}

fn check_types(f: &Function, block: BlockId, inst: &Inst) -> Result<(), VerifyError> {
    let scalar = Type::Scalar;
    let vector = Type::Vector;
    match inst {
        Inst::Const { dst, ty, .. } => expect_type(f, block, *dst, scalar(*ty), "const dst"),
        Inst::Move { dst, ty, src } => {
            expect_type(f, block, *dst, scalar(*ty), "move dst")?;
            expect_type(f, block, *src, scalar(*ty), "move src")
        }
        Inst::Bin {
            ty,
            dst,
            lhs,
            rhs,
            op,
        } => {
            if op.int_only() && ty.is_float() {
                return Err(VerifyError::TypeMismatch {
                    function: f.name.clone(),
                    block,
                    detail: format!("integer-only operator {op} applied to {ty}"),
                });
            }
            expect_type(f, block, *dst, scalar(*ty), "bin dst")?;
            expect_type(f, block, *lhs, scalar(*ty), "bin lhs")?;
            expect_type(f, block, *rhs, scalar(*ty), "bin rhs")
        }
        Inst::Un { ty, dst, src, .. } => {
            expect_type(f, block, *dst, scalar(*ty), "un dst")?;
            expect_type(f, block, *src, scalar(*ty), "un src")
        }
        Inst::Cmp {
            ty, dst, lhs, rhs, ..
        } => {
            expect_type(f, block, *dst, scalar(ScalarType::I32), "cmp dst")?;
            expect_type(f, block, *lhs, scalar(*ty), "cmp lhs")?;
            expect_type(f, block, *rhs, scalar(*ty), "cmp rhs")
        }
        Inst::Select {
            ty,
            dst,
            cond,
            if_true,
            if_false,
        } => {
            expect_type(f, block, *dst, scalar(*ty), "select dst")?;
            expect_type(f, block, *cond, scalar(ScalarType::I32), "select cond")?;
            expect_type(f, block, *if_true, scalar(*ty), "select true value")?;
            expect_type(f, block, *if_false, scalar(*ty), "select false value")
        }
        Inst::Cast { dst, to, src, from } => {
            expect_type(f, block, *dst, scalar(*to), "cast dst")?;
            expect_type(f, block, *src, scalar(*from), "cast src")
        }
        Inst::Load { dst, ty, addr, .. } => {
            expect_type(f, block, *dst, scalar(*ty), "load dst")?;
            expect_type(f, block, *addr, scalar(ScalarType::Ptr), "load address")
        }
        Inst::Store {
            ty, addr, value, ..
        } => {
            expect_type(f, block, *addr, scalar(ScalarType::Ptr), "store address")?;
            expect_type(f, block, *value, scalar(*ty), "store value")
        }
        Inst::Call { .. } => Ok(()), // signature checked at module level
        Inst::VecWidth { dst, .. } => {
            expect_type(f, block, *dst, scalar(ScalarType::I64), "vecwidth dst")
        }
        Inst::VecSplat { dst, elem, src } => {
            expect_type(f, block, *dst, vector(*elem), "splat dst")?;
            expect_type(f, block, *src, scalar(*elem), "splat src")
        }
        Inst::VecLoad {
            dst, elem, addr, ..
        } => {
            expect_type(f, block, *dst, vector(*elem), "vload dst")?;
            expect_type(f, block, *addr, scalar(ScalarType::Ptr), "vload address")
        }
        Inst::VecStore {
            elem, addr, value, ..
        } => {
            expect_type(f, block, *addr, scalar(ScalarType::Ptr), "vstore address")?;
            expect_type(f, block, *value, vector(*elem), "vstore value")
        }
        Inst::VecBin {
            elem,
            dst,
            lhs,
            rhs,
            op,
        } => {
            if op.int_only() && elem.is_float() {
                return Err(VerifyError::TypeMismatch {
                    function: f.name.clone(),
                    block,
                    detail: format!("integer-only operator {op} applied to vector of {elem}"),
                });
            }
            expect_type(f, block, *dst, vector(*elem), "vbin dst")?;
            expect_type(f, block, *lhs, vector(*elem), "vbin lhs")?;
            expect_type(f, block, *rhs, vector(*elem), "vbin rhs")
        }
        Inst::VecReduce { elem, dst, src, .. } => {
            expect_type(f, block, *dst, scalar(*elem), "vreduce dst")?;
            expect_type(f, block, *src, vector(*elem), "vreduce src")
        }
        Inst::Branch { cond, .. } => {
            expect_type(f, block, *cond, scalar(ScalarType::I32), "branch condition")
        }
        Inst::Jump { .. } => Ok(()),
        Inst::Ret { value } => match (value, f.ret) {
            (Some(v), Some(ty)) => expect_type(f, block, *v, ty, "return value"),
            (None, None) => Ok(()),
            _ => Err(VerifyError::ReturnMismatch {
                function: f.name.clone(),
                block,
            }),
        },
    }
}

/// Verify a single function in isolation (no inter-procedural checks).
///
/// # Errors
///
/// Returns the first [`VerifyError`] found: malformed block structure,
/// out-of-range registers or block targets, or operand type mismatches.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    if f.entry.index() >= f.blocks.len() {
        return Err(VerifyError::BadBlockTarget {
            function: f.name.clone(),
            block: f.entry,
            target: f.entry,
        });
    }
    for b in &f.blocks {
        if b.terminator().is_none() {
            return Err(VerifyError::MissingTerminator {
                function: f.name.clone(),
                block: b.id,
            });
        }
        for (i, inst) in b.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != b.insts.len() {
                return Err(VerifyError::EarlyTerminator {
                    function: f.name.clone(),
                    block: b.id,
                    index: i,
                });
            }
            check_regs(f, b.id, inst)?;
            check_types(f, b.id, inst)?;
            for target in inst.successors() {
                if target.index() >= f.blocks.len() {
                    return Err(VerifyError::BadBlockTarget {
                        function: f.name.clone(),
                        block: b.id,
                        target,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Verify every function of a module plus inter-procedural call signatures.
///
/// # Errors
///
/// Returns the first error found; see [`verify_function`] for intra-procedural
/// checks. Additionally reports unknown callees and arity mismatches.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in m.functions() {
        verify_function(f)?;
        for (_, inst) in f.iter_insts() {
            if let Inst::Call { callee, args, dst } = inst {
                let Some(target) = m.function(callee) else {
                    return Err(VerifyError::UnknownCallee {
                        function: f.name.clone(),
                        callee: callee.clone(),
                    });
                };
                if target.params.len() != args.len() {
                    return Err(VerifyError::BadArity {
                        function: f.name.clone(),
                        callee: callee.clone(),
                        expected: target.params.len(),
                        found: args.len(),
                    });
                }
                if dst.is_some() && target.ret.is_none() {
                    return Err(VerifyError::TypeMismatch {
                        function: f.name.clone(),
                        block: f.entry,
                        detail: format!("call to void function {callee} expects a result"),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Immediate};

    fn valid_add() -> Function {
        let mut b = FunctionBuilder::new(
            "add",
            &[Type::Scalar(ScalarType::I32), Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Add, ScalarType::I32, x, y);
        b.ret(Some(s));
        b.finish()
    }

    #[test]
    fn valid_function_passes() {
        assert_eq!(verify_function(&valid_add()), Ok(()));
    }

    #[test]
    fn missing_terminator_is_reported() {
        let mut f = valid_add();
        let entry = f.entry;
        f.block_mut(entry).insts.pop();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::MissingTerminator { .. })
        ));
    }

    #[test]
    fn early_terminator_is_reported() {
        let mut f = valid_add();
        let entry = f.entry;
        f.block_mut(entry)
            .insts
            .insert(0, Inst::Ret { value: None });
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::EarlyTerminator { .. })
        ));
    }

    #[test]
    fn bad_register_is_reported() {
        let mut f = valid_add();
        let entry = f.entry;
        f.block_mut(entry).insts.insert(
            0,
            Inst::Move {
                dst: VReg(90),
                ty: ScalarType::I32,
                src: VReg(0),
            },
        );
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadRegister { reg: VReg(90), .. })
        ));
    }

    #[test]
    fn bad_block_target_is_reported() {
        let mut f = valid_add();
        let entry = f.entry;
        let last = f.block_mut(entry).insts.len() - 1;
        f.block_mut(entry).insts[last] = Inst::Jump { target: BlockId(7) };
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadBlockTarget {
                target: BlockId(7),
                ..
            })
        ));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut f = valid_add();
        let entry = f.entry;
        // Make the add operate on f32 while its operands are i32 registers.
        if let Inst::Bin { ty, .. } = &mut f.block_mut(entry).insts[0] {
            *ty = ScalarType::F32;
        }
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn int_only_op_on_float_is_reported() {
        let mut b = FunctionBuilder::new("f", &[Type::Scalar(ScalarType::F32)], None);
        let x = b.param(0);
        let y = b.bin(BinOp::Xor, ScalarType::F32, x, x);
        let _ = y;
        b.ret(None);
        assert!(matches!(
            verify_function(&b.finish()),
            Err(VerifyError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn return_mismatch_is_reported() {
        let mut b = FunctionBuilder::new("f", &[], Some(Type::Scalar(ScalarType::I32)));
        b.ret(None);
        assert!(matches!(
            verify_function(&b.finish()),
            Err(VerifyError::ReturnMismatch { .. })
        ));
    }

    #[test]
    fn module_checks_callee_and_arity() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("caller", &[], None);
        let x = b.const_int(ScalarType::I32, 1);
        b.call("callee", &[x], None);
        b.ret(None);
        m.add_function(b.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::UnknownCallee { .. })
        ));

        // Add a callee with the wrong arity.
        let mut c = FunctionBuilder::new("callee", &[], None);
        c.ret(None);
        m.add_function(c.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadArity { .. })
        ));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = VerifyError::MissingTerminator {
            function: "f".into(),
            block: BlockId(0),
        };
        assert!(!e.to_string().is_empty());
        let e = VerifyError::BadArity {
            function: "f".into(),
            callee: "g".into(),
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("expected 2"));
        let _ = Immediate::Int(0); // keep the import used in this test module
    }
}
