//! Functions, basic blocks and the per-function register type table.

use crate::annotations::AnnotationSet;
use crate::inst::{BlockId, Inst, VReg};
use crate::types::Type;
use serde::{Deserialize, Serialize};

/// A basic block: a straight-line instruction sequence ending in a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The block's id (its index inside [`Function::blocks`]).
    pub id: BlockId,
    /// Instructions, the last of which must be a terminator once the function
    /// is complete (checked by [`crate::verify::verify_function`]).
    pub insts: Vec<Inst>,
}

impl Block {
    /// Create an empty block with the given id.
    pub fn new(id: BlockId) -> Self {
        Block {
            id,
            insts: Vec::new(),
        }
    }

    /// The block's terminator, if the block is non-empty and properly terminated.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Control-flow successors of this block (empty if unterminated or `ret`).
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator().map(Inst::successors).unwrap_or_default()
    }
}

/// A bytecode function: typed parameters, virtual registers and a CFG of blocks.
///
/// # Examples
///
/// Build `fn add1(x: i32) -> i32 { x + 1 }` by hand (the
/// [`FunctionBuilder`](crate::FunctionBuilder) offers a friendlier interface):
///
/// ```
/// use splitc_vbc::{BinOp, Function, Immediate, Inst, ScalarType, Type};
///
/// let mut f = Function::new("add1", &[Type::Scalar(ScalarType::I32)],
///                           Some(Type::Scalar(ScalarType::I32)));
/// let x = f.params[0].0;
/// let one = f.new_vreg(Type::Scalar(ScalarType::I32));
/// let sum = f.new_vreg(Type::Scalar(ScalarType::I32));
/// let entry = f.entry;
/// f.block_mut(entry).insts.extend([
///     Inst::Const { dst: one, ty: ScalarType::I32, imm: Immediate::Int(1) },
///     Inst::Bin { op: BinOp::Add, ty: ScalarType::I32, dst: sum, lhs: x, rhs: one },
///     Inst::Ret { value: Some(sum) },
/// ]);
/// assert!(splitc_vbc::verify_function(&f).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name, unique within a module.
    pub name: String,
    /// Parameter registers and their types, in call order.
    pub params: Vec<(VReg, Type)>,
    /// Return type, or `None` for `void` functions.
    pub ret: Option<Type>,
    /// Types of all virtual registers, indexed by [`VReg::index`].
    pub vreg_types: Vec<Type>,
    /// Basic blocks, indexed by [`BlockId::index`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Split-compilation annotations attached to this function.
    pub annotations: AnnotationSet,
}

impl Function {
    /// Create a function with one (empty) entry block and one register per parameter.
    pub fn new(name: &str, params: &[Type], ret: Option<Type>) -> Self {
        let mut f = Function {
            name: name.to_owned(),
            params: Vec::new(),
            ret,
            vreg_types: Vec::new(),
            blocks: vec![Block::new(BlockId(0))],
            entry: BlockId(0),
            annotations: AnnotationSet::new(),
        };
        for &ty in params {
            let r = f.new_vreg(ty);
            f.params.push((r, ty));
        }
        f
    }

    /// Allocate a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: Type) -> VReg {
        let r = VReg(self.vreg_types.len() as u32);
        self.vreg_types.push(ty);
        r
    }

    /// Append a fresh, empty basic block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::new(id));
        id
    }

    /// Number of virtual registers in the function.
    pub fn num_vregs(&self) -> usize {
        self.vreg_types.len()
    }

    /// Type of virtual register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not belong to this function.
    pub fn vreg_type(&self, r: VReg) -> Type {
        self.vreg_types[r.index()]
    }

    /// Shared access to block `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to block `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterate over `(block id, instruction)` pairs in block order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, &Inst)> {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter().map(move |i| (b.id, i)))
    }

    /// Total number of instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// `true` if the function contains any portable vector builtin.
    pub fn uses_vector_builtins(&self) -> bool {
        self.iter_insts().any(|(_, i)| i.is_vector())
    }

    /// `true` if the function performs any floating-point arithmetic or memory access.
    pub fn uses_float(&self) -> bool {
        self.iter_insts().any(|(_, i)| match i {
            Inst::Const { ty, .. }
            | Inst::Move { ty, .. }
            | Inst::Bin { ty, .. }
            | Inst::Un { ty, .. }
            | Inst::Cmp { ty, .. }
            | Inst::Select { ty, .. }
            | Inst::Load { ty, .. }
            | Inst::Store { ty, .. } => ty.is_float(),
            Inst::Cast { to, from, .. } => to.is_float() || from.is_float(),
            Inst::VecSplat { elem, .. }
            | Inst::VecLoad { elem, .. }
            | Inst::VecStore { elem, .. }
            | Inst::VecBin { elem, .. }
            | Inst::VecReduce { elem, .. }
            | Inst::VecWidth { elem, .. } => elem.is_float(),
            _ => false,
        })
    }

    /// Predecessor lists for every block, indexed by [`BlockId::index`].
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for s in b.successors() {
                preds[s.index()].push(b.id);
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Immediate;
    use crate::types::ScalarType;
    use crate::BinOp;

    fn sample() -> Function {
        // fn f(n: i32) -> i32 { if n > 0 { return n; } return 0; }
        let mut f = Function::new(
            "f",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let n = f.params[0].0;
        let zero = f.new_vreg(Type::Scalar(ScalarType::I32));
        let cond = f.new_vreg(Type::Scalar(ScalarType::I32));
        let then_bb = f.new_block();
        let else_bb = f.new_block();
        let entry = f.entry;
        f.block_mut(entry).insts.extend([
            Inst::Const {
                dst: zero,
                ty: ScalarType::I32,
                imm: Immediate::Int(0),
            },
            Inst::Cmp {
                op: crate::CmpOp::Gt,
                ty: ScalarType::I32,
                dst: cond,
                lhs: n,
                rhs: zero,
            },
            Inst::Branch {
                cond,
                then_bb,
                else_bb,
            },
        ]);
        f.block_mut(then_bb)
            .insts
            .push(Inst::Ret { value: Some(n) });
        f.block_mut(else_bb)
            .insts
            .push(Inst::Ret { value: Some(zero) });
        f
    }

    #[test]
    fn new_function_has_entry_block_and_param_regs() {
        let f = Function::new(
            "g",
            &[Type::Scalar(ScalarType::F32), Type::Scalar(ScalarType::Ptr)],
            None,
        );
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.num_vregs(), 2);
        assert_eq!(f.vreg_type(f.params[1].0), Type::Scalar(ScalarType::Ptr));
    }

    #[test]
    fn successors_and_predecessors_are_consistent() {
        let f = sample();
        let entry_succs = f.block(f.entry).successors();
        assert_eq!(entry_succs, vec![BlockId(1), BlockId(2)]);
        let preds = f.predecessors();
        assert_eq!(preds[1], vec![f.entry]);
        assert_eq!(preds[2], vec![f.entry]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn inst_iteration_and_counts() {
        let f = sample();
        assert_eq!(f.num_insts(), 5);
        assert_eq!(f.iter_insts().count(), 5);
        assert!(!f.uses_vector_builtins());
        assert!(!f.uses_float());
    }

    #[test]
    fn float_and_vector_detection() {
        let mut f = Function::new("v", &[Type::Scalar(ScalarType::Ptr)], None);
        let p = f.params[0].0;
        let v = f.new_vreg(Type::Vector(ScalarType::F32));
        let entry = f.entry;
        f.block_mut(entry).insts.extend([
            Inst::VecLoad {
                dst: v,
                elem: ScalarType::F32,
                addr: p,
                offset: 0,
            },
            Inst::VecBin {
                op: BinOp::Add,
                elem: ScalarType::F32,
                dst: v,
                lhs: v,
                rhs: v,
            },
            Inst::Ret { value: None },
        ]);
        assert!(f.uses_vector_builtins());
        assert!(f.uses_float());
    }

    #[test]
    fn terminator_detection_on_blocks() {
        let f = sample();
        assert!(f.block(f.entry).terminator().is_some());
        let empty = Block::new(BlockId(9));
        assert!(empty.terminator().is_none());
        assert!(empty.successors().is_empty());
    }
}
