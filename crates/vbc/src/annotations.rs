//! Split-compilation annotations.
//!
//! Annotations are the channel through which the *offline* compiler transfers
//! the results of expensive analyses to the *online* (JIT) compiler — the core
//! mechanism of split compilation (Figure 1 of the paper). They are attached to
//! [`Module`](crate::Module)s and [`Function`](crate::Function)s as a small,
//! serializable key/value store, plus a set of well-known typed records used by
//! this reproduction:
//!
//! * [`SpillOrder`] — portable spill priorities computed offline (split register
//!   allocation, Section 4 / Diouf et al.).
//! * [`VectorizationSummary`] — which loops were auto-vectorized offline and with
//!   which element types (Table 1).
//! * [`KernelTraits`] — hardware requirements/affinities of a kernel (Section 3:
//!   "annotations may also express the hardware requirements or characteristics
//!   of a code module").

use crate::types::ScalarType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A dynamically-typed annotation value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnnotationValue {
    /// Integer payload.
    Int(i64),
    /// Floating-point payload.
    Float(f64),
    /// Boolean payload.
    Bool(bool),
    /// String payload.
    Str(String),
    /// Ordered list of values.
    List(Vec<AnnotationValue>),
    /// String-keyed map of values.
    Map(BTreeMap<String, AnnotationValue>),
}

impl AnnotationValue {
    /// The integer payload, if this value is an [`AnnotationValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AnnotationValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, accepting integer values as exact floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AnnotationValue::Float(v) => Some(*v),
            AnnotationValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this value is an [`AnnotationValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AnnotationValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this value is an [`AnnotationValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AnnotationValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The list payload, if this value is an [`AnnotationValue::List`].
    pub fn as_list(&self) -> Option<&[AnnotationValue]> {
        match self {
            AnnotationValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// The map payload, if this value is an [`AnnotationValue::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<String, AnnotationValue>> {
        match self {
            AnnotationValue::Map(v) => Some(v),
            _ => None,
        }
    }
}

impl From<i64> for AnnotationValue {
    fn from(v: i64) -> Self {
        AnnotationValue::Int(v)
    }
}
impl From<f64> for AnnotationValue {
    fn from(v: f64) -> Self {
        AnnotationValue::Float(v)
    }
}
impl From<bool> for AnnotationValue {
    fn from(v: bool) -> Self {
        AnnotationValue::Bool(v)
    }
}
impl From<&str> for AnnotationValue {
    fn from(v: &str) -> Self {
        AnnotationValue::Str(v.to_owned())
    }
}
impl From<String> for AnnotationValue {
    fn from(v: String) -> Self {
        AnnotationValue::Str(v)
    }
}

impl fmt::Display for AnnotationValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotationValue::Int(v) => write!(f, "{v}"),
            AnnotationValue::Float(v) => write!(f, "{v}"),
            AnnotationValue::Bool(v) => write!(f, "{v}"),
            AnnotationValue::Str(v) => write!(f, "{v:?}"),
            AnnotationValue::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            AnnotationValue::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, x)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {x}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Well-known annotation keys used by the offline compiler and the JIT.
pub mod keys {
    /// Portable spill-priority order ([`super::SpillOrder`]).
    pub const SPILL_ORDER: &str = "splitc.regalloc.spill_order";
    /// Summary of offline auto-vectorization ([`super::VectorizationSummary`]).
    pub const VECTORIZATION: &str = "splitc.vectorize.summary";
    /// Kernel hardware traits ([`super::KernelTraits`]).
    pub const KERNEL_TRAITS: &str = "splitc.kernel.traits";
    /// Module-level marker: the module was produced by the offline pipeline
    /// (so the JIT may skip its own analyses).
    pub const OFFLINE_OPTIMIZED: &str = "splitc.offline.optimized";
    /// Estimated trip count of the hottest loop of a function.
    pub const TRIP_COUNT_HINT: &str = "splitc.loop.trip_count_hint";
}

/// A set of annotations attached to a module or function.
///
/// # Examples
///
/// ```
/// use splitc_vbc::{AnnotationSet, AnnotationValue};
///
/// let mut a = AnnotationSet::new();
/// a.set("splitc.loop.trip_count_hint", 4096i64);
/// assert_eq!(a.get_int("splitc.loop.trip_count_hint"), Some(4096));
/// assert!(a.contains("splitc.loop.trip_count_hint"));
/// assert_eq!(a.get("missing"), None::<&AnnotationValue>);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnnotationSet {
    entries: BTreeMap<String, AnnotationValue>,
}

impl AnnotationSet {
    /// Create an empty annotation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of annotations in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the set holds no annotations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace the annotation under `key`.
    pub fn set(&mut self, key: &str, value: impl Into<AnnotationValue>) {
        self.entries.insert(key.to_owned(), value.into());
    }

    /// Remove the annotation under `key`, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<AnnotationValue> {
        self.entries.remove(key)
    }

    /// `true` if an annotation exists under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Look up the annotation under `key`.
    pub fn get(&self, key: &str) -> Option<&AnnotationValue> {
        self.entries.get(key)
    }

    /// Look up an integer annotation.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(AnnotationValue::as_int)
    }

    /// Look up a boolean annotation.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(AnnotationValue::as_bool)
    }

    /// Look up a string annotation.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(AnnotationValue::as_str)
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AnnotationValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Remove every annotation. Used to build the "no annotations" baseline of
    /// the split-compilation experiments.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Store the spill-order record ([`SpillOrder`]).
    pub fn set_spill_order(&mut self, order: &SpillOrder) {
        self.entries
            .insert(keys::SPILL_ORDER.to_owned(), order.to_value());
    }

    /// Retrieve the spill-order record, if present and well-formed.
    pub fn spill_order(&self) -> Option<SpillOrder> {
        self.get(keys::SPILL_ORDER).and_then(SpillOrder::from_value)
    }

    /// Store the vectorization summary ([`VectorizationSummary`]).
    pub fn set_vectorization(&mut self, summary: &VectorizationSummary) {
        self.entries
            .insert(keys::VECTORIZATION.to_owned(), summary.to_value());
    }

    /// Retrieve the vectorization summary, if present and well-formed.
    pub fn vectorization(&self) -> Option<VectorizationSummary> {
        self.get(keys::VECTORIZATION)
            .and_then(VectorizationSummary::from_value)
    }

    /// Store the kernel-traits record ([`KernelTraits`]).
    pub fn set_kernel_traits(&mut self, traits: &KernelTraits) {
        self.entries
            .insert(keys::KERNEL_TRAITS.to_owned(), traits.to_value());
    }

    /// Retrieve the kernel-traits record, if present and well-formed.
    pub fn kernel_traits(&self) -> Option<KernelTraits> {
        self.get(keys::KERNEL_TRAITS)
            .and_then(KernelTraits::from_value)
    }
}

/// Portable spill-priority annotation produced by split register allocation.
///
/// The offline step ranks virtual registers by how profitable they are to
/// *keep in registers* (descending). Given `k` physical registers at JIT time,
/// the online step keeps the first registers of `keep_order` that are
/// simultaneously live and spills the rest — a linear-time decision, as in the
/// split register allocation the paper cites.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpillOrder {
    /// Virtual register indices ranked from most to least profitable to keep.
    pub keep_order: Vec<u32>,
    /// Maximum number of simultaneously-live values (MAXLIVE) observed offline.
    pub max_pressure: u32,
}

impl SpillOrder {
    /// Encode into a generic [`AnnotationValue`].
    pub fn to_value(&self) -> AnnotationValue {
        let mut m = BTreeMap::new();
        m.insert(
            "keep_order".to_owned(),
            AnnotationValue::List(
                self.keep_order
                    .iter()
                    .map(|r| AnnotationValue::Int(i64::from(*r)))
                    .collect(),
            ),
        );
        m.insert(
            "max_pressure".to_owned(),
            AnnotationValue::Int(i64::from(self.max_pressure)),
        );
        AnnotationValue::Map(m)
    }

    /// Decode from a generic [`AnnotationValue`], returning `None` on shape mismatch.
    pub fn from_value(v: &AnnotationValue) -> Option<Self> {
        let m = v.as_map()?;
        let keep_order = m
            .get("keep_order")?
            .as_list()?
            .iter()
            .map(|x| x.as_int().map(|i| i as u32))
            .collect::<Option<Vec<_>>>()?;
        let max_pressure = m.get("max_pressure")?.as_int()? as u32;
        Some(SpillOrder {
            keep_order,
            max_pressure,
        })
    }
}

/// Description of one loop vectorized by the offline compiler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorizedLoop {
    /// Block id of the vector loop body.
    pub body_block: u32,
    /// Element type of the vector operations.
    pub elem: ScalarType,
    /// `true` if the loop carries a reduction (sum/min/max).
    pub reduction: bool,
    /// Estimated trip count (elements), when known offline.
    pub trip_count_hint: Option<u64>,
}

/// Function-level summary of offline auto-vectorization.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct VectorizationSummary {
    /// One entry per vectorized loop.
    pub loops: Vec<VectorizedLoop>,
}

impl VectorizationSummary {
    /// `true` if at least one loop was vectorized.
    pub fn any(&self) -> bool {
        !self.loops.is_empty()
    }

    /// Encode into a generic [`AnnotationValue`].
    pub fn to_value(&self) -> AnnotationValue {
        AnnotationValue::List(
            self.loops
                .iter()
                .map(|l| {
                    let mut m = BTreeMap::new();
                    m.insert(
                        "body_block".to_owned(),
                        AnnotationValue::Int(i64::from(l.body_block)),
                    );
                    m.insert(
                        "elem".to_owned(),
                        AnnotationValue::Str(l.elem.mnemonic().to_owned()),
                    );
                    m.insert("reduction".to_owned(), AnnotationValue::Bool(l.reduction));
                    if let Some(tc) = l.trip_count_hint {
                        m.insert(
                            "trip_count_hint".to_owned(),
                            AnnotationValue::Int(tc as i64),
                        );
                    }
                    AnnotationValue::Map(m)
                })
                .collect(),
        )
    }

    /// Decode from a generic [`AnnotationValue`], returning `None` on shape mismatch.
    pub fn from_value(v: &AnnotationValue) -> Option<Self> {
        let list = v.as_list()?;
        let mut loops = Vec::with_capacity(list.len());
        for item in list {
            let m = item.as_map()?;
            loops.push(VectorizedLoop {
                body_block: m.get("body_block")?.as_int()? as u32,
                elem: ScalarType::from_mnemonic(m.get("elem")?.as_str()?)?,
                reduction: m.get("reduction")?.as_bool()?,
                trip_count_hint: m
                    .get("trip_count_hint")
                    .and_then(|x| x.as_int())
                    .map(|x| x as u64),
            });
        }
        Some(VectorizationSummary { loops })
    }
}

/// Hardware requirements and affinities of a kernel, used by the heterogeneous
/// runtime to map computations onto cores (Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelTraits {
    /// The kernel performs floating-point arithmetic.
    pub uses_fp: bool,
    /// The kernel contains portable vector builtins.
    pub uses_vector: bool,
    /// The kernel is dominated by control flow rather than data processing.
    pub control_intensive: bool,
    /// Estimated arithmetic operations per element processed.
    pub ops_per_element: f64,
    /// Estimated bytes of memory traffic per element processed.
    pub bytes_per_element: f64,
}

impl KernelTraits {
    /// Encode into a generic [`AnnotationValue`].
    pub fn to_value(&self) -> AnnotationValue {
        let mut m = BTreeMap::new();
        m.insert("uses_fp".to_owned(), AnnotationValue::Bool(self.uses_fp));
        m.insert(
            "uses_vector".to_owned(),
            AnnotationValue::Bool(self.uses_vector),
        );
        m.insert(
            "control_intensive".to_owned(),
            AnnotationValue::Bool(self.control_intensive),
        );
        m.insert(
            "ops_per_element".to_owned(),
            AnnotationValue::Float(self.ops_per_element),
        );
        m.insert(
            "bytes_per_element".to_owned(),
            AnnotationValue::Float(self.bytes_per_element),
        );
        AnnotationValue::Map(m)
    }

    /// Decode from a generic [`AnnotationValue`], returning `None` on shape mismatch.
    pub fn from_value(v: &AnnotationValue) -> Option<Self> {
        let m = v.as_map()?;
        Some(KernelTraits {
            uses_fp: m.get("uses_fp")?.as_bool()?,
            uses_vector: m.get("uses_vector")?.as_bool()?,
            control_intensive: m.get("control_intensive")?.as_bool()?,
            ops_per_element: m.get("ops_per_element")?.as_float()?,
            bytes_per_element: m.get("bytes_per_element")?.as_float()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut a = AnnotationSet::new();
        assert!(a.is_empty());
        a.set("x", 3i64);
        a.set("y", true);
        a.set("z", "hello");
        a.set("w", 2.5f64);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get_int("x"), Some(3));
        assert_eq!(a.get_bool("y"), Some(true));
        assert_eq!(a.get_str("z"), Some("hello"));
        assert_eq!(a.get("w").and_then(AnnotationValue::as_float), Some(2.5));
        assert_eq!(a.remove("x"), Some(AnnotationValue::Int(3)));
        assert!(!a.contains("x"));
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn spill_order_round_trip() {
        let s = SpillOrder {
            keep_order: vec![5, 2, 9, 0],
            max_pressure: 11,
        };
        let mut a = AnnotationSet::new();
        a.set_spill_order(&s);
        assert_eq!(a.spill_order(), Some(s));
    }

    #[test]
    fn vectorization_summary_round_trip() {
        let summary = VectorizationSummary {
            loops: vec![
                VectorizedLoop {
                    body_block: 2,
                    elem: ScalarType::F32,
                    reduction: false,
                    trip_count_hint: Some(4096),
                },
                VectorizedLoop {
                    body_block: 5,
                    elem: ScalarType::U8,
                    reduction: true,
                    trip_count_hint: None,
                },
            ],
        };
        let mut a = AnnotationSet::new();
        a.set_vectorization(&summary);
        assert_eq!(a.vectorization(), Some(summary));
        assert!(a.vectorization().unwrap().any());
    }

    #[test]
    fn kernel_traits_round_trip() {
        let t = KernelTraits {
            uses_fp: true,
            uses_vector: true,
            control_intensive: false,
            ops_per_element: 2.0,
            bytes_per_element: 12.0,
        };
        let mut a = AnnotationSet::new();
        a.set_kernel_traits(&t);
        assert_eq!(a.kernel_traits(), Some(t));
    }

    #[test]
    fn malformed_typed_annotation_is_rejected() {
        let mut a = AnnotationSet::new();
        a.set(keys::SPILL_ORDER, "not a map");
        assert_eq!(a.spill_order(), None);
        a.set(keys::VECTORIZATION, 7i64);
        assert_eq!(a.vectorization(), None);
        a.set(keys::KERNEL_TRAITS, false);
        assert_eq!(a.kernel_traits(), None);
    }

    #[test]
    fn display_of_values() {
        let v = AnnotationValue::List(vec![
            AnnotationValue::Int(1),
            AnnotationValue::Str("a".into()),
            AnnotationValue::Bool(false),
        ]);
        assert_eq!(v.to_string(), "[1, \"a\", false]");
    }
}
