//! Instruction set of the virtual bytecode.
//!
//! The bytecode is register-based (unbounded virtual registers) and typed.
//! Control flow is explicit: every basic block ends with exactly one
//! terminator ([`Inst::is_terminator`]).
//!
//! The *portable vector builtins* of the paper (Section 4, Table 1) appear as
//! the `Vec*` instructions: they operate on vectors whose lane count is left
//! to the online compiler ([`Inst::VecWidth`] materializes that lane count as
//! a runtime/JIT-time constant).

use crate::types::ScalarType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register index, unique within one [`Function`](crate::Function).
///
/// # Examples
///
/// ```
/// use splitc_vbc::VReg;
/// let r = VReg(3);
/// assert_eq!(r.index(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VReg(pub u32);

impl VReg {
    /// The register number as a `usize`, for indexing side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block index, unique within one [`Function`](crate::Function).
///
/// # Examples
///
/// ```
/// use splitc_vbc::BlockId;
/// assert_eq!(BlockId(0).index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block number as a `usize`, for indexing side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A compile-time immediate operand.
///
/// Integer immediates are stored as `i64` and re-normalized to the
/// instruction's scalar type when executed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Immediate {
    /// Integer (or pointer) immediate.
    Int(i64),
    /// Floating-point immediate.
    Float(f64),
}

impl Immediate {
    /// The integer payload, converting floats by truncation.
    pub fn as_i64(self) -> i64 {
        match self {
            Immediate::Int(v) => v,
            Immediate::Float(v) => v as i64,
        }
    }

    /// The float payload, converting integers exactly where possible.
    pub fn as_f64(self) -> f64 {
        match self {
            Immediate::Int(v) => v as f64,
            Immediate::Float(v) => v,
        }
    }
}

impl fmt::Display for Immediate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Immediate::Int(v) => write!(f, "{v}"),
            Immediate::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// Two-operand arithmetic and logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Division (signedness-aware; float division for float types).
    Div,
    /// Remainder (integers only).
    Rem,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Left shift (integers only).
    ///
    /// The shift count is masked modulo 64 — the width of the evaluation
    /// register, *not* the width of the operand type — so counts of 64, 65 or
    /// −1 behave as 0, 1 and 63 respectively, on every execution path
    /// (interpreter, legacy simulator walk, pre-decoded execution, constant
    /// folding). The shifted value is then normalized to the operand type:
    /// `(i32) 1 << 33` is 0 (the bit leaves the 64-bit register's low 32
    /// bits), never 2. A count is never a trap.
    Shl,
    /// Right shift (arithmetic for signed, logical for unsigned).
    ///
    /// The count is masked modulo 64 exactly like [`BinOp::Shl`]; the operand
    /// is sign- or zero-extended to 64 bits per its type before shifting, so
    /// an arithmetic shift of a narrow negative value keeps filling with sign
    /// bits for counts past the operand width.
    Shr,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
}

impl BinOp {
    /// All binary operators, for exhaustive testing.
    pub const ALL: [BinOp; 12] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Min,
        BinOp::Max,
    ];

    /// `true` if the operation is only defined on integer types.
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }

    /// `true` if the operation is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Min | BinOp::Max
        )
    }

    /// Lowercase mnemonic for the textual listing.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not (integers only).
    Not,
}

impl UnOp {
    /// Lowercase mnemonic for the textual listing.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicates. The result is an `i32` holding `0` or `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// All comparison predicates, for exhaustive testing.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// The predicate with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the predicate (`a < b` ⇔ `!(a >= b)`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Lowercase mnemonic for the textual listing.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Horizontal (across-lane) reduction operators for [`Inst::VecReduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Sum of all lanes.
    Add,
    /// Minimum of all lanes.
    Min,
    /// Maximum of all lanes.
    Max,
}

impl ReduceOp {
    /// The equivalent element-wise binary operator.
    pub fn as_bin_op(self) -> BinOp {
        match self {
            ReduceOp::Add => BinOp::Add,
            ReduceOp::Min => BinOp::Min,
            ReduceOp::Max => BinOp::Max,
        }
    }

    /// Lowercase mnemonic for the textual listing.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ReduceOp::Add => "add",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single bytecode instruction.
///
/// All operands are virtual registers; constants enter the program through
/// [`Inst::Const`]. Memory addresses are byte offsets held in `ptr`-typed
/// registers, optionally displaced by a static `offset`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = imm` — materialize a constant of scalar type `ty`.
    Const {
        /// Destination register.
        dst: VReg,
        /// Type of the constant.
        ty: ScalarType,
        /// The immediate value.
        imm: Immediate,
    },
    /// `dst = src` — register copy.
    Move {
        /// Destination register.
        dst: VReg,
        /// Value type being copied.
        ty: ScalarType,
        /// Source register.
        src: VReg,
    },
    /// `dst = lhs <op> rhs` on scalars of type `ty`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Operand/result scalar type.
        ty: ScalarType,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = <op> src` on a scalar of type `ty`.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand/result scalar type.
        ty: ScalarType,
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: VReg,
    },
    /// `dst = (lhs <pred> rhs) ? 1 : 0`; `dst` is `i32`.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Type of the compared operands.
        ty: ScalarType,
        /// Destination register (`i32`, 0 or 1).
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// `dst = cond != 0 ? if_true : if_false` on scalars of type `ty`.
    Select {
        /// Operand/result scalar type.
        ty: ScalarType,
        /// Destination register.
        dst: VReg,
        /// Condition register (`i32`).
        cond: VReg,
        /// Value when the condition is non-zero.
        if_true: VReg,
        /// Value when the condition is zero.
        if_false: VReg,
    },
    /// `dst = cast<to>(src)` — numeric conversion from `from` to `to`.
    Cast {
        /// Destination register.
        dst: VReg,
        /// Target type.
        to: ScalarType,
        /// Source register.
        src: VReg,
        /// Source type.
        from: ScalarType,
    },
    /// `dst = *(ty*)(addr + offset)` — scalar load from linear memory.
    Load {
        /// Destination register.
        dst: VReg,
        /// Loaded scalar type.
        ty: ScalarType,
        /// Base address register (`ptr`).
        addr: VReg,
        /// Static byte displacement.
        offset: i64,
    },
    /// `*(ty*)(addr + offset) = value` — scalar store to linear memory.
    Store {
        /// Stored scalar type.
        ty: ScalarType,
        /// Base address register (`ptr`).
        addr: VReg,
        /// Static byte displacement.
        offset: i64,
        /// Value register.
        value: VReg,
    },
    /// Direct call to a function in the same module.
    Call {
        /// Destination for the return value, if the callee returns one.
        dst: Option<VReg>,
        /// Callee name.
        callee: String,
        /// Argument registers, in order.
        args: Vec<VReg>,
    },
    /// `dst = <number of lanes of `elem` in one target vector register>`.
    ///
    /// This is the *portable* part of the vector builtins: the offline
    /// compiler emits loops stepping by this value, and the online compiler
    /// folds it to a constant (or to the scalarization factor when the
    /// target has no SIMD unit). `dst` is `i64`.
    VecWidth {
        /// Destination register (`i64` lane count).
        dst: VReg,
        /// Element type the lane count refers to.
        elem: ScalarType,
    },
    /// `dst = splat(src)` — broadcast a scalar into every lane.
    VecSplat {
        /// Destination vector register.
        dst: VReg,
        /// Lane type.
        elem: ScalarType,
        /// Scalar source register.
        src: VReg,
    },
    /// `dst = vload(addr + offset)` — contiguous vector load.
    VecLoad {
        /// Destination vector register.
        dst: VReg,
        /// Lane type.
        elem: ScalarType,
        /// Base address register (`ptr`).
        addr: VReg,
        /// Static byte displacement.
        offset: i64,
    },
    /// `vstore(addr + offset, value)` — contiguous vector store.
    VecStore {
        /// Lane type.
        elem: ScalarType,
        /// Base address register (`ptr`).
        addr: VReg,
        /// Static byte displacement.
        offset: i64,
        /// Vector value register.
        value: VReg,
    },
    /// Element-wise `dst = lhs <op> rhs` on vectors.
    VecBin {
        /// Element-wise operator.
        op: BinOp,
        /// Lane type.
        elem: ScalarType,
        /// Destination vector register.
        dst: VReg,
        /// Left vector operand.
        lhs: VReg,
        /// Right vector operand.
        rhs: VReg,
    },
    /// Horizontal reduction of all lanes of `src` into scalar `dst`.
    VecReduce {
        /// Reduction operator.
        op: ReduceOp,
        /// Lane type.
        elem: ScalarType,
        /// Scalar destination register.
        dst: VReg,
        /// Vector source register.
        src: VReg,
    },
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch on `cond != 0`.
    Branch {
        /// Condition register (`i32`).
        cond: VReg,
        /// Target when non-zero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Returned value, if the function returns one.
        value: Option<VReg>,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Move { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Cmp { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::VecWidth { dst, .. }
            | Inst::VecSplat { dst, .. }
            | Inst::VecLoad { dst, .. }
            | Inst::VecBin { dst, .. }
            | Inst::VecReduce { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. }
            | Inst::VecStore { .. }
            | Inst::Jump { .. }
            | Inst::Branch { .. }
            | Inst::Ret { .. } => None,
        }
    }

    /// The registers read by this instruction, in operand order.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Inst::Const { .. } | Inst::VecWidth { .. } | Inst::Jump { .. } => Vec::new(),
            Inst::Move { src, .. } | Inst::Un { src, .. } | Inst::Cast { src, .. } => vec![*src],
            Inst::Bin { lhs, rhs, .. }
            | Inst::Cmp { lhs, rhs, .. }
            | Inst::VecBin { lhs, rhs, .. } => {
                vec![*lhs, *rhs]
            }
            Inst::Select {
                cond,
                if_true,
                if_false,
                ..
            } => vec![*cond, *if_true, *if_false],
            Inst::Load { addr, .. } | Inst::VecLoad { addr, .. } => vec![*addr],
            Inst::Store { addr, value, .. } | Inst::VecStore { addr, value, .. } => {
                vec![*addr, *value]
            }
            Inst::Call { args, .. } => args.clone(),
            Inst::VecSplat { src, .. } | Inst::VecReduce { src, .. } => vec![*src],
            Inst::Branch { cond, .. } => vec![*cond],
            Inst::Ret { value } => value.iter().copied().collect(),
        }
    }

    /// `true` if the instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jump { .. } | Inst::Branch { .. } | Inst::Ret { .. }
        )
    }

    /// Control-flow successors of a terminator (empty for non-terminators and `Ret`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Jump { target } => vec![*target],
            Inst::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => Vec::new(),
        }
    }

    /// `true` if the instruction reads or writes linear memory or transfers control.
    ///
    /// Such instructions must not be removed by dead-code elimination even when
    /// their result is unused.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::VecStore { .. }
                | Inst::Call { .. }
                | Inst::Jump { .. }
                | Inst::Branch { .. }
                | Inst::Ret { .. }
        )
    }

    /// `true` for the portable vector builtins (including [`Inst::VecWidth`]).
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Inst::VecWidth { .. }
                | Inst::VecSplat { .. }
                | Inst::VecLoad { .. }
                | Inst::VecStore { .. }
                | Inst::VecBin { .. }
                | Inst::VecReduce { .. }
        )
    }

    /// `true` if the instruction accesses linear memory.
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::VecLoad { .. } | Inst::VecStore { .. }
        )
    }

    /// Apply `f` to every register operand (uses and definition) in place.
    pub fn rewrite_regs(&mut self, mut f: impl FnMut(VReg) -> VReg) {
        macro_rules! rw {
            ($($r:expr),*) => {{ $(*$r = f(*$r);)* }};
        }
        match self {
            Inst::Const { dst, .. } | Inst::VecWidth { dst, .. } => rw!(dst),
            Inst::Move { dst, src, .. }
            | Inst::Un { dst, src, .. }
            | Inst::Cast { dst, src, .. }
            | Inst::VecSplat { dst, src, .. }
            | Inst::VecReduce { dst, src, .. } => rw!(dst, src),
            Inst::Bin { dst, lhs, rhs, .. }
            | Inst::Cmp { dst, lhs, rhs, .. }
            | Inst::VecBin { dst, lhs, rhs, .. } => rw!(dst, lhs, rhs),
            Inst::Select {
                dst,
                cond,
                if_true,
                if_false,
                ..
            } => rw!(dst, cond, if_true, if_false),
            Inst::Load { dst, addr, .. } | Inst::VecLoad { dst, addr, .. } => rw!(dst, addr),
            Inst::Store { addr, value, .. } | Inst::VecStore { addr, value, .. } => {
                rw!(addr, value)
            }
            Inst::Call { dst, args, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Branch { cond, .. } => rw!(cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    *v = f(*v);
                }
            }
            Inst::Jump { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_uses_of_binary() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: ScalarType::I32,
            dst: VReg(2),
            lhs: VReg(0),
            rhs: VReg(1),
        };
        assert_eq!(i.dst(), Some(VReg(2)));
        assert_eq!(i.uses(), vec![VReg(0), VReg(1)]);
        assert!(!i.is_terminator());
        assert!(!i.has_side_effects());
    }

    #[test]
    fn store_has_side_effects_and_no_dst() {
        let i = Inst::Store {
            ty: ScalarType::F32,
            addr: VReg(0),
            offset: 4,
            value: VReg(1),
        };
        assert_eq!(i.dst(), None);
        assert!(i.has_side_effects());
        assert!(i.is_memory_access());
        assert_eq!(i.uses(), vec![VReg(0), VReg(1)]);
    }

    #[test]
    fn terminator_successors() {
        let j = Inst::Jump { target: BlockId(3) };
        assert!(j.is_terminator());
        assert_eq!(j.successors(), vec![BlockId(3)]);

        let b = Inst::Branch {
            cond: VReg(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);

        let r = Inst::Ret {
            value: Some(VReg(5)),
        };
        assert!(r.is_terminator());
        assert!(r.successors().is_empty());
        assert_eq!(r.uses(), vec![VReg(5)]);
    }

    #[test]
    fn rewrite_regs_shifts_every_operand() {
        let mut i = Inst::Select {
            ty: ScalarType::I32,
            dst: VReg(0),
            cond: VReg(1),
            if_true: VReg(2),
            if_false: VReg(3),
        };
        i.rewrite_regs(|r| VReg(r.0 + 10));
        assert_eq!(i.dst(), Some(VReg(10)));
        assert_eq!(i.uses(), vec![VReg(11), VReg(12), VReg(13)]);
    }

    #[test]
    fn cmp_negation_is_involutive_and_swapping_consistent() {
        for op in CmpOp::ALL {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn vector_instructions_are_classified() {
        let v = Inst::VecBin {
            op: BinOp::Mul,
            elem: ScalarType::F32,
            dst: VReg(0),
            lhs: VReg(1),
            rhs: VReg(2),
        };
        assert!(v.is_vector());
        let w = Inst::VecWidth {
            dst: VReg(0),
            elem: ScalarType::U8,
        };
        assert!(w.is_vector());
        assert!(w.uses().is_empty());
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(BinOp::Rem.int_only());
        assert!(!BinOp::Add.int_only());
    }
}
