//! Human-readable textual listing of bytecode.
//!
//! The listing is intended for debugging and documentation; it is not a parseable
//! assembly format. [`Function`] and [`Module`] implement [`std::fmt::Display`]
//! through the helpers here.

use crate::function::Function;
use crate::inst::Inst;
use crate::module::Module;
use std::fmt;

/// Format one instruction as a listing line (without indentation).
pub fn format_inst(inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, ty, imm } => format!("{dst} = const.{ty} {imm}"),
        Inst::Move { dst, ty, src } => format!("{dst} = mov.{ty} {src}"),
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => format!("{dst} = {op}.{ty} {lhs}, {rhs}"),
        Inst::Un { op, ty, dst, src } => format!("{dst} = {op}.{ty} {src}"),
        Inst::Cmp {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => format!("{dst} = cmp.{op}.{ty} {lhs}, {rhs}"),
        Inst::Select {
            ty,
            dst,
            cond,
            if_true,
            if_false,
        } => {
            format!("{dst} = select.{ty} {cond} ? {if_true} : {if_false}")
        }
        Inst::Cast { dst, to, src, from } => format!("{dst} = cast.{from}.{to} {src}"),
        Inst::Load {
            dst,
            ty,
            addr,
            offset,
        } => format!("{dst} = load.{ty} [{addr}{offset:+}]"),
        Inst::Store {
            ty,
            addr,
            offset,
            value,
        } => format!("store.{ty} [{addr}{offset:+}], {value}"),
        Inst::Call { dst, callee, args } => {
            let args = args
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            match dst {
                Some(d) => format!("{d} = call {callee}({args})"),
                None => format!("call {callee}({args})"),
            }
        }
        Inst::VecWidth { dst, elem } => format!("{dst} = vec.width.{elem}"),
        Inst::VecSplat { dst, elem, src } => format!("{dst} = vec.splat.{elem} {src}"),
        Inst::VecLoad {
            dst,
            elem,
            addr,
            offset,
        } => format!("{dst} = vec.load.{elem} [{addr}{offset:+}]"),
        Inst::VecStore {
            elem,
            addr,
            offset,
            value,
        } => {
            format!("vec.store.{elem} [{addr}{offset:+}], {value}")
        }
        Inst::VecBin {
            op,
            elem,
            dst,
            lhs,
            rhs,
        } => format!("{dst} = vec.{op}.{elem} {lhs}, {rhs}"),
        Inst::VecReduce { op, elem, dst, src } => format!("{dst} = vec.reduce.{op}.{elem} {src}"),
        Inst::Jump { target } => format!("jump {target}"),
        Inst::Branch {
            cond,
            then_bb,
            else_bb,
        } => format!("branch {cond}, {then_bb}, {else_bb}"),
        Inst::Ret { value } => match value {
            Some(v) => format!("ret {v}"),
            None => "ret".to_owned(),
        },
    }
}

/// Write the full listing of a function to `f`.
pub fn write_function(out: &mut fmt::Formatter<'_>, func: &Function) -> fmt::Result {
    let params = func
        .params
        .iter()
        .map(|(r, t)| format!("{r}: {t}"))
        .collect::<Vec<_>>()
        .join(", ");
    let ret = func.ret.map(|t| format!(" -> {t}")).unwrap_or_default();
    writeln!(out, "fn {}({params}){ret} {{", func.name)?;
    if !func.annotations.is_empty() {
        for (k, v) in func.annotations.iter() {
            writeln!(out, "  ;; @{k} = {v}")?;
        }
    }
    for b in &func.blocks {
        writeln!(out, "{}:", b.id)?;
        for inst in &b.insts {
            writeln!(out, "  {}", format_inst(inst))?;
        }
    }
    writeln!(out, "}}")
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_function(f, self)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ";; module {}", self.name)?;
        for (k, v) in self.annotations.iter() {
            writeln!(f, ";; @{k} = {v}")?;
        }
        for func in self.functions() {
            writeln!(f)?;
            write_function(f, func)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::types::{ScalarType, Type};

    #[test]
    fn listing_contains_blocks_registers_and_annotations() {
        let mut b = FunctionBuilder::new(
            "axpy",
            &[Type::Scalar(ScalarType::F32), Type::Scalar(ScalarType::F32)],
            Some(Type::Scalar(ScalarType::F32)),
        );
        let a = b.param(0);
        let x = b.param(1);
        let y = b.bin(BinOp::Mul, ScalarType::F32, a, x);
        b.ret(Some(y));
        let mut f = b.finish();
        f.annotations.set("splitc.offline.optimized", true);

        let text = f.to_string();
        assert!(text.contains("fn axpy(%0: f32, %1: f32) -> f32 {"));
        assert!(text.contains("bb0:"));
        assert!(text.contains("%2 = mul.f32 %0, %1"));
        assert!(text.contains("ret %2"));
        assert!(text.contains("@splitc.offline.optimized = true"));
    }

    #[test]
    fn module_listing_includes_all_functions() {
        let mut m = crate::Module::new("demo");
        let mut b = FunctionBuilder::new("one", &[], None);
        b.ret(None);
        m.add_function(b.finish());
        let mut b = FunctionBuilder::new("two", &[], None);
        b.ret(None);
        m.add_function(b.finish());
        let text = m.to_string();
        assert!(text.contains(";; module demo"));
        assert!(text.contains("fn one()"));
        assert!(text.contains("fn two()"));
    }

    #[test]
    fn every_instruction_kind_formats() {
        use crate::inst::{BlockId, CmpOp, Immediate, ReduceOp, UnOp, VReg};
        let samples = vec![
            Inst::Const {
                dst: VReg(0),
                ty: ScalarType::F32,
                imm: Immediate::Float(1.5),
            },
            Inst::Move {
                dst: VReg(1),
                ty: ScalarType::I32,
                src: VReg(0),
            },
            Inst::Un {
                op: UnOp::Neg,
                ty: ScalarType::I32,
                dst: VReg(1),
                src: VReg(0),
            },
            Inst::Cmp {
                op: CmpOp::Le,
                ty: ScalarType::I32,
                dst: VReg(2),
                lhs: VReg(0),
                rhs: VReg(1),
            },
            Inst::Select {
                ty: ScalarType::I32,
                dst: VReg(3),
                cond: VReg(2),
                if_true: VReg(0),
                if_false: VReg(1),
            },
            Inst::Cast {
                dst: VReg(4),
                to: ScalarType::F32,
                src: VReg(0),
                from: ScalarType::I32,
            },
            Inst::Load {
                dst: VReg(5),
                ty: ScalarType::U8,
                addr: VReg(0),
                offset: -4,
            },
            Inst::Store {
                ty: ScalarType::U8,
                addr: VReg(0),
                offset: 8,
                value: VReg(5),
            },
            Inst::Call {
                dst: None,
                callee: "f".into(),
                args: vec![VReg(0), VReg(1)],
            },
            Inst::VecWidth {
                dst: VReg(6),
                elem: ScalarType::U16,
            },
            Inst::VecSplat {
                dst: VReg(7),
                elem: ScalarType::U16,
                src: VReg(6),
            },
            Inst::VecLoad {
                dst: VReg(8),
                elem: ScalarType::U16,
                addr: VReg(0),
                offset: 0,
            },
            Inst::VecStore {
                elem: ScalarType::U16,
                addr: VReg(0),
                offset: 0,
                value: VReg(8),
            },
            Inst::VecBin {
                op: BinOp::Max,
                elem: ScalarType::U16,
                dst: VReg(9),
                lhs: VReg(8),
                rhs: VReg(7),
            },
            Inst::VecReduce {
                op: ReduceOp::Max,
                elem: ScalarType::U16,
                dst: VReg(10),
                src: VReg(9),
            },
            Inst::Jump { target: BlockId(1) },
            Inst::Branch {
                cond: VReg(2),
                then_bb: BlockId(1),
                else_bb: BlockId(2),
            },
            Inst::Ret { value: None },
        ];
        for inst in samples {
            assert!(!format_inst(&inst).is_empty());
        }
    }
}
