//! Modules: the unit of deployment of the virtualization layer.

use crate::annotations::AnnotationSet;
use crate::function::Function;
use serde::{Deserialize, Serialize};

/// A deployable bytecode module: a set of functions plus module-level annotations.
///
/// A module is what the paper ships to the device: target-independent code
/// with embedded annotations, compiled to native code on (or near) the system.
///
/// # Examples
///
/// ```
/// use splitc_vbc::{Function, Module, ScalarType, Type};
///
/// let mut m = Module::new("demo");
/// m.add_function(Function::new("noop", &[], None));
/// assert_eq!(m.functions().len(), 1);
/// assert!(m.function("noop").is_some());
/// assert!(m.function("missing").is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    functions: Vec<Function>,
    /// Module-level annotations (e.g. the offline-optimized marker).
    pub annotations: AnnotationSet,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_owned(),
            functions: Vec::new(),
            annotations: AnnotationSet::new(),
        }
    }

    /// Add a function, replacing any existing function with the same name.
    pub fn add_function(&mut self, f: Function) {
        if let Some(slot) = self.functions.iter_mut().find(|g| g.name == f.name) {
            *slot = f;
        } else {
            self.functions.push(f);
        }
    }

    /// All functions, in insertion order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to all functions.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Total instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }

    /// Remove every annotation from the module and from all of its functions.
    ///
    /// This is how the experiments build the "plain bytecode, no split
    /// compilation" baseline: the same code, stripped of the information the
    /// offline step distilled.
    pub fn strip_annotations(&mut self) {
        self.annotations.clear();
        for f in &mut self.functions {
            f.annotations.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::keys;

    #[test]
    fn add_and_lookup_functions() {
        let mut m = Module::new("m");
        m.add_function(Function::new("a", &[], None));
        m.add_function(Function::new("b", &[], None));
        assert_eq!(m.functions().len(), 2);
        assert!(m.function("a").is_some());
        assert!(m.function_mut("b").is_some());
        assert!(m.function("c").is_none());
    }

    #[test]
    fn add_function_replaces_same_name() {
        let mut m = Module::new("m");
        m.add_function(Function::new("a", &[], None));
        let mut replacement = Function::new("a", &[], None);
        replacement.annotations.set("marker", true);
        m.add_function(replacement);
        assert_eq!(m.functions().len(), 1);
        assert_eq!(
            m.function("a").unwrap().annotations.get_bool("marker"),
            Some(true)
        );
    }

    #[test]
    fn strip_annotations_removes_module_and_function_annotations() {
        let mut m = Module::new("m");
        let mut f = Function::new("a", &[], None);
        f.annotations.set(keys::TRIP_COUNT_HINT, 128i64);
        m.add_function(f);
        m.annotations.set(keys::OFFLINE_OPTIMIZED, true);
        m.strip_annotations();
        assert!(m.annotations.is_empty());
        assert!(m.function("a").unwrap().annotations.is_empty());
    }

    #[test]
    fn num_insts_sums_over_functions() {
        let mut m = Module::new("m");
        let mut f = Function::new("a", &[], None);
        let entry = f.entry;
        f.block_mut(entry)
            .insts
            .push(crate::Inst::Ret { value: None });
        m.add_function(f);
        assert_eq!(m.num_insts(), 1);
    }
}
