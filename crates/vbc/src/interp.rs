//! Reference interpreter for the virtual bytecode.
//!
//! The interpreter defines the *semantics* of the bytecode independently of
//! any target. It is used for differential testing: whatever code the online
//! compiler produces for a simulated target must compute the same results as
//! the interpreter (see the cross-crate integration tests).

use crate::inst::{BinOp, CmpOp, Inst, UnOp};
use crate::module::Module;
use crate::types::ScalarType;
use std::error::Error;
use std::fmt;

/// Default vector register width assumed by the interpreter (bytes).
///
/// Matches the 128-bit SIMD units (SSE/AltiVec/Neon) contemporary with the paper.
pub const DEFAULT_VECTOR_WIDTH_BYTES: u64 = 16;

/// Default instruction budget before an execution is aborted as runaway.
pub const DEFAULT_FUEL: u64 = 500_000_000;

/// A runtime value held in a virtual register.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer or pointer payload (already normalized to its static type).
    Int(i64),
    /// Floating-point payload.
    Float(f64),
    /// Vector payload: one scalar per lane.
    Vector(Vec<Value>),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`Value::Int`].
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected integer value, found {other:?}"),
        }
    }

    /// The floating-point payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an [`Value::Float`].
    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            other => panic!("expected float value, found {other:?}"),
        }
    }

    /// The vector lanes.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a [`Value::Vector`].
    pub fn as_vector(&self) -> &[Value] {
        match self {
            Value::Vector(v) => v,
            other => panic!("expected vector value, found {other:?}"),
        }
    }

    /// Copy `other` into `self`, reusing a vector's lane allocation instead
    /// of dropping and reallocating it (the interpreter's `Move`/`Select`
    /// hot path goes through this).
    fn assign_from(&mut self, other: &Value) {
        match (self, other) {
            (Value::Vector(dst), Value::Vector(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
    }
}

/// Copy register `src` into register `dst` (no-op when they alias), reusing
/// the destination's allocation for vector values.
fn copy_reg(regs: &mut [Value], dst: usize, src: usize) {
    if dst == src {
        return;
    }
    let (a, b) = if dst < src {
        let (lo, hi) = regs.split_at_mut(src);
        (&mut lo[dst], &hi[0])
    } else {
        let (lo, hi) = regs.split_at_mut(dst);
        (&mut hi[0], &lo[src])
    };
    a.assign_from(b);
}

/// An error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The requested entry function does not exist in the module.
    UnknownFunction(String),
    /// The argument count does not match the entry function's parameters.
    BadArgumentCount {
        /// Parameters expected by the function.
        expected: usize,
        /// Arguments supplied by the caller.
        found: usize,
    },
    /// A runtime fault: division by zero, out-of-bounds access, missing value.
    Trap(String),
    /// The instruction budget was exhausted (probable infinite loop).
    OutOfFuel,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownFunction(name) => write!(f, "unknown function {name}"),
            ExecError::BadArgumentCount { expected, found } => {
                write!(f, "expected {expected} arguments, found {found}")
            }
            ExecError::Trap(msg) => write!(f, "trap: {msg}"),
            ExecError::OutOfFuel => write!(f, "instruction budget exhausted"),
        }
    }
}

impl Error for ExecError {}

/// Flat linear memory shared by bytecode programs and simulated targets.
///
/// Addresses are byte offsets. Address `0` is reserved so that null pointers
/// trap. Allocation is a simple bump allocator aligned to 16 bytes (one vector
/// register), which is all the experiments need.
///
/// # Examples
///
/// ```
/// use splitc_vbc::Memory;
///
/// let mut mem = Memory::new(1 << 12);
/// let a = mem.alloc(4 * 4);
/// mem.write_f32s(a, &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(mem.read_f32s(a, 4), vec![1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Memory {
    bytes: Vec<u8>,
    next: u64,
}

impl Memory {
    /// Create a memory of `size` bytes, all zero.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
            next: 16,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Bump-allocate `size` bytes aligned to 16 and return the base address.
    ///
    /// # Panics
    ///
    /// Panics if the memory is exhausted.
    pub fn alloc(&mut self, size: u64) -> u64 {
        let base = self.next;
        let aligned = size.div_ceil(16) * 16;
        assert!(
            base + aligned <= self.bytes.len() as u64,
            "out of simulated memory: requested {size} bytes at {base}"
        );
        self.next += aligned;
        base
    }

    fn check(&self, addr: u64, len: u64) -> Result<(), ExecError> {
        if addr == 0 {
            return Err(ExecError::Trap("null pointer access".into()));
        }
        // Checked end-of-access arithmetic: an address near `u64::MAX` (a
        // negative base reinterpreted as unsigned) used to wrap `addr + len`
        // past the length comparison and panic on the slice below instead of
        // trapping.
        let oob = || {
            ExecError::Trap(format!(
                "out-of-bounds access at {addr}+{len} (memory size {})",
                self.bytes.len()
            ))
        };
        let end = addr.checked_add(len).ok_or_else(oob)?;
        if end > self.bytes.len() as u64 {
            return Err(oob());
        }
        Ok(())
    }

    /// Load one scalar of type `ty` from `addr`.
    ///
    /// # Errors
    ///
    /// Returns a trap on null or out-of-bounds access.
    pub fn load_scalar(&self, ty: ScalarType, addr: u64) -> Result<Value, ExecError> {
        let size = ty.size_bytes();
        self.check(addr, size)?;
        let b = &self.bytes[addr as usize..(addr + size) as usize];
        let raw = {
            let mut buf = [0u8; 8];
            buf[..b.len()].copy_from_slice(b);
            u64::from_le_bytes(buf)
        };
        Ok(match ty {
            ScalarType::F32 => Value::Float(f32::from_bits(raw as u32) as f64),
            ScalarType::F64 => Value::Float(f64::from_bits(raw)),
            _ => Value::Int(normalize_int(ty, raw as i64)),
        })
    }

    /// Store one scalar of type `ty` to `addr`.
    ///
    /// # Errors
    ///
    /// Returns a trap on null or out-of-bounds access, or if `value` has the
    /// wrong kind for `ty`.
    pub fn store_scalar(
        &mut self,
        ty: ScalarType,
        addr: u64,
        value: &Value,
    ) -> Result<(), ExecError> {
        let size = ty.size_bytes();
        self.check(addr, size)?;
        let raw: u64 = match (ty, value) {
            (ScalarType::F32, Value::Float(v)) => u64::from((*v as f32).to_bits()),
            (ScalarType::F64, Value::Float(v)) => v.to_bits(),
            (t, Value::Int(v)) if t.is_int() => normalize_int(t, *v) as u64,
            (t, v) => {
                return Err(ExecError::Trap(format!("cannot store {v:?} as {t}")));
            }
        };
        let bytes = raw.to_le_bytes();
        self.bytes[addr as usize..(addr + size) as usize].copy_from_slice(&bytes[..size as usize]);
        Ok(())
    }

    /// Write a slice of `f32` values starting at `addr`.
    pub fn write_f32s(&mut self, addr: u64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            self.store_scalar(
                ScalarType::F32,
                addr + 4 * i as u64,
                &Value::Float(f64::from(*v)),
            )
            .expect("write_f32s in bounds");
        }
    }

    /// Read `n` `f32` values starting at `addr`.
    pub fn read_f32s(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                self.load_scalar(ScalarType::F32, addr + 4 * i as u64)
                    .expect("read_f32s in bounds")
                    .as_float() as f32
            })
            .collect()
    }

    /// Write a slice of `f64` values starting at `addr`.
    pub fn write_f64s(&mut self, addr: u64, data: &[f64]) {
        for (i, v) in data.iter().enumerate() {
            self.store_scalar(ScalarType::F64, addr + 8 * i as u64, &Value::Float(*v))
                .expect("write_f64s in bounds");
        }
    }

    /// Read `n` `f64` values starting at `addr`.
    pub fn read_f64s(&self, addr: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                self.load_scalar(ScalarType::F64, addr + 8 * i as u64)
                    .expect("read_f64s in bounds")
                    .as_float()
            })
            .collect()
    }

    /// Write a slice of `u8` values starting at `addr`.
    pub fn write_u8s(&mut self, addr: u64, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Read `n` `u8` values starting at `addr`.
    pub fn read_u8s(&self, addr: u64, n: usize) -> Vec<u8> {
        self.bytes[addr as usize..addr as usize + n].to_vec()
    }

    /// Write a slice of `u16` values starting at `addr`.
    pub fn write_u16s(&mut self, addr: u64, data: &[u16]) {
        for (i, v) in data.iter().enumerate() {
            self.store_scalar(
                ScalarType::U16,
                addr + 2 * i as u64,
                &Value::Int(i64::from(*v)),
            )
            .expect("write_u16s in bounds");
        }
    }

    /// Read `n` `u16` values starting at `addr`.
    pub fn read_u16s(&self, addr: u64, n: usize) -> Vec<u16> {
        (0..n)
            .map(|i| {
                self.load_scalar(ScalarType::U16, addr + 2 * i as u64)
                    .expect("read_u16s in bounds")
                    .as_int() as u16
            })
            .collect()
    }

    /// Write a slice of `i32` values starting at `addr`.
    pub fn write_i32s(&mut self, addr: u64, data: &[i32]) {
        for (i, v) in data.iter().enumerate() {
            self.store_scalar(
                ScalarType::I32,
                addr + 4 * i as u64,
                &Value::Int(i64::from(*v)),
            )
            .expect("write_i32s in bounds");
        }
    }

    /// Read `n` `i32` values starting at `addr`.
    pub fn read_i32s(&self, addr: u64, n: usize) -> Vec<i32> {
        (0..n)
            .map(|i| {
                self.load_scalar(ScalarType::I32, addr + 4 * i as u64)
                    .expect("read_i32s in bounds")
                    .as_int() as i32
            })
            .collect()
    }

    /// Raw access to the underlying bytes (used by the target simulators so
    /// that bytecode and machine code share one address space).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Raw mutable access to the underlying bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

/// Compute the effective address `base + offset` with wrapping semantics,
/// trapping on null or negative results.
///
/// This mirrors the machine simulators' address discipline
/// (`frame.int[base].wrapping_add(offset)` followed by a `<= 0` trap): a
/// negative base or an `i64::MAX` base plus a positive offset is a
/// [`ExecError::Trap`], never an integer-overflow panic or an out-of-range
/// slice.
fn effective_addr(base: i64, offset: i64) -> Result<u64, ExecError> {
    let addr = base.wrapping_add(offset);
    if addr <= 0 {
        return Err(ExecError::Trap(format!("null or negative address {addr}")));
    }
    Ok(addr as u64)
}

/// Normalize a raw `i64` to scalar type `ty` (mask to width, then sign- or
/// zero-extend according to signedness).
pub fn normalize_int(ty: ScalarType, v: i64) -> i64 {
    match ty {
        ScalarType::I8 => v as i8 as i64,
        ScalarType::I16 => v as i16 as i64,
        ScalarType::I32 => v as i32 as i64,
        ScalarType::I64 => v,
        ScalarType::U8 => i64::from(v as u8),
        ScalarType::U16 => i64::from(v as u16),
        ScalarType::U32 => i64::from(v as u32),
        ScalarType::U64 | ScalarType::Ptr => v,
        ScalarType::F32 | ScalarType::F64 => v,
    }
}

/// Evaluate a scalar binary operation with bytecode semantics.
///
/// # Errors
///
/// Returns a trap for division or remainder by zero.
pub fn eval_bin(op: BinOp, ty: ScalarType, lhs: &Value, rhs: &Value) -> Result<Value, ExecError> {
    if ty.is_float() {
        let a = lhs.as_float();
        let b = rhs.as_float();
        let r = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            other => return Err(ExecError::Trap(format!("float {other} unsupported"))),
        };
        let r = if ty == ScalarType::F32 {
            f64::from(r as f32)
        } else {
            r
        };
        return Ok(Value::Float(r));
    }
    let a = lhs.as_int();
    let b = rhs.as_int();
    let unsigned = ty.is_unsigned();
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(ExecError::Trap("integer division by zero".into()));
            }
            if unsigned {
                ((a as u64) / (b as u64)) as i64
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(ExecError::Trap("integer remainder by zero".into()));
            }
            if unsigned {
                ((a as u64) % (b as u64)) as i64
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        // Shift counts are masked modulo 64 (see `BinOp::Shl`): `b as u32`
        // keeps the low 32 bits and `wrapping_shl`/`wrapping_shr` mask those
        // modulo 64, so negative and >= 64 counts reduce to `b & 63` — the
        // exact computation the machine-code `alu` helper performs, which is
        // what keeps all execution paths bit-identical on extreme counts.
        BinOp::Shl => a.wrapping_shl(b as u32),
        BinOp::Shr => {
            if unsigned {
                ((a as u64).wrapping_shr(b as u32)) as i64
            } else {
                a.wrapping_shr(b as u32)
            }
        }
        BinOp::Min => {
            if unsigned {
                ((a as u64).min(b as u64)) as i64
            } else {
                a.min(b)
            }
        }
        BinOp::Max => {
            if unsigned {
                ((a as u64).max(b as u64)) as i64
            } else {
                a.max(b)
            }
        }
    };
    Ok(Value::Int(normalize_int(ty, r)))
}

/// Evaluate a scalar comparison with bytecode semantics; returns 0 or 1.
pub fn eval_cmp(op: CmpOp, ty: ScalarType, lhs: &Value, rhs: &Value) -> i64 {
    let ordering = if ty.is_float() {
        lhs.as_float().partial_cmp(&rhs.as_float())
    } else if ty.is_unsigned() {
        Some((lhs.as_int() as u64).cmp(&(rhs.as_int() as u64)))
    } else {
        Some(lhs.as_int().cmp(&rhs.as_int()))
    };
    let Some(ord) = ordering else {
        // NaN comparisons are all false except Ne.
        return i64::from(op == CmpOp::Ne);
    };
    let r = match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    };
    i64::from(r)
}

/// Evaluate a numeric cast with bytecode semantics.
pub fn eval_cast(from: ScalarType, to: ScalarType, v: &Value) -> Value {
    match (from.is_float(), to.is_float()) {
        (true, true) => {
            let x = v.as_float();
            Value::Float(if to == ScalarType::F32 {
                f64::from(x as f32)
            } else {
                x
            })
        }
        (true, false) => Value::Int(normalize_int(to, v.as_float() as i64)),
        (false, true) => {
            let x = v.as_int();
            let f = if from.is_unsigned() {
                x as u64 as f64
            } else {
                x as f64
            };
            Value::Float(if to == ScalarType::F32 {
                f64::from(f as f32)
            } else {
                f
            })
        }
        (false, false) => Value::Int(normalize_int(to, v.as_int())),
    }
}

/// Statistics collected during one interpreted execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Bytecode instructions executed.
    pub executed: u64,
    /// Scalar and vector memory operations executed.
    pub memory_ops: u64,
    /// Function calls performed (including the entry call).
    pub calls: u64,
}

/// The reference interpreter.
///
/// # Examples
///
/// ```
/// use splitc_vbc::{FunctionBuilder, Interpreter, Memory, Module, ScalarType, Type, Value, BinOp};
///
/// let mut b = FunctionBuilder::new(
///     "double",
///     &[Type::Scalar(ScalarType::I32)],
///     Some(Type::Scalar(ScalarType::I32)),
/// );
/// let x = b.param(0);
/// let two = b.const_int(ScalarType::I32, 2);
/// let y = b.bin(BinOp::Mul, ScalarType::I32, x, two);
/// b.ret(Some(y));
/// let mut m = Module::new("demo");
/// m.add_function(b.finish());
///
/// let mut interp = Interpreter::new(&m);
/// let mut mem = Memory::new(64);
/// let out = interp.run("double", &[Value::Int(21)], &mut mem).unwrap();
/// assert_eq!(out, Some(Value::Int(42)));
/// ```
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    vector_width_bytes: u64,
    fuel: u64,
    stats: ExecStats,
    /// Recycled register files: one `Vec<Value>` per active call depth,
    /// returned here when the call ends so sibling and repeated calls reuse
    /// the allocation instead of building a fresh `vec![Value::Int(0); n]`.
    reg_pool: Vec<Vec<Value>>,
    /// Recycled call-argument scratch buffers (one per active call depth),
    /// so `Call` no longer collects a fresh `Vec<Value>` per invocation.
    argv_pool: Vec<Vec<Value>>,
}

impl<'m> Interpreter<'m> {
    /// Create an interpreter over `module` with the default vector width and fuel.
    pub fn new(module: &'m Module) -> Self {
        Interpreter {
            module,
            vector_width_bytes: DEFAULT_VECTOR_WIDTH_BYTES,
            fuel: DEFAULT_FUEL,
            stats: ExecStats::default(),
            reg_pool: Vec::new(),
            argv_pool: Vec::new(),
        }
    }

    /// Override the vector width (bytes) used for the portable vector builtins.
    pub fn with_vector_width(mut self, bytes: u64) -> Self {
        self.vector_width_bytes = bytes;
        self
    }

    /// Override the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Statistics from the most recent [`Interpreter::run`] call.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Execute `func` with `args` against `mem` and return its result.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on unknown functions, argument mismatches,
    /// runtime traps or fuel exhaustion.
    pub fn run(
        &mut self,
        func: &str,
        args: &[Value],
        mem: &mut Memory,
    ) -> Result<Option<Value>, ExecError> {
        self.stats = ExecStats::default();
        let mut fuel = self.fuel;
        self.call_function(func, args, mem, &mut fuel)
    }

    fn call_function(
        &mut self,
        name: &str,
        args: &[Value],
        mem: &mut Memory,
        fuel: &mut u64,
    ) -> Result<Option<Value>, ExecError> {
        let f = self
            .module
            .function(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_owned()))?;
        if args.len() != f.params.len() {
            return Err(ExecError::BadArgumentCount {
                expected: f.params.len(),
                found: args.len(),
            });
        }
        self.stats.calls += 1;
        // The register file comes from the pool: repeated and sibling calls
        // reuse one allocation instead of building a fresh Vec per call.
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(f.num_vregs(), Value::Int(0));
        for ((r, _), v) in f.params.iter().zip(args) {
            regs[r.index()].assign_from(v);
        }
        let result = self.exec_function(f, &mut regs, mem, fuel);
        regs.clear();
        self.reg_pool.push(regs);
        result
    }

    fn exec_function(
        &mut self,
        f: &'m crate::Function,
        regs: &mut [Value],
        mem: &mut Memory,
        fuel: &mut u64,
    ) -> Result<Option<Value>, ExecError> {
        let mut block = f.entry;
        let mut index = 0usize;
        loop {
            if *fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            *fuel -= 1;
            self.stats.executed += 1;
            // Borrowing the instruction (lifetime `'m`, via the module
            // reference) instead of cloning it: the old per-step
            // `Inst::clone()` copied a `String` + `Vec` for every `Call` and
            // a full enum payload for everything else.
            let inst = f
                .block(block)
                .insts
                .get(index)
                .ok_or_else(|| ExecError::Trap(format!("fell off the end of {block}")))?;
            index += 1;
            match *inst {
                Inst::Const { dst, ty, imm } => {
                    regs[dst.index()] = if ty.is_float() {
                        // Canonicalize even if the module carries an
                        // unrounded double (e.g. built by hand or decoded
                        // from an older wire format), so the interpreter
                        // agrees with every compiled path.
                        Value::Float(ty.canonicalize_float(imm.as_f64()))
                    } else {
                        Value::Int(normalize_int(ty, imm.as_i64()))
                    };
                }
                Inst::Move { dst, src, .. } => copy_reg(regs, dst.index(), src.index()),
                Inst::Bin {
                    op,
                    ty,
                    dst,
                    lhs,
                    rhs,
                } => {
                    regs[dst.index()] = eval_bin(op, ty, &regs[lhs.index()], &regs[rhs.index()])?;
                }
                Inst::Un { op, ty, dst, src } => {
                    let v = &regs[src.index()];
                    regs[dst.index()] = match op {
                        UnOp::Neg => {
                            if ty.is_float() {
                                Value::Float(-v.as_float())
                            } else {
                                Value::Int(normalize_int(ty, v.as_int().wrapping_neg()))
                            }
                        }
                        UnOp::Not => Value::Int(normalize_int(ty, !v.as_int())),
                    };
                }
                Inst::Cmp {
                    op,
                    ty,
                    dst,
                    lhs,
                    rhs,
                } => {
                    regs[dst.index()] =
                        Value::Int(eval_cmp(op, ty, &regs[lhs.index()], &regs[rhs.index()]));
                }
                Inst::Select {
                    dst,
                    cond,
                    if_true,
                    if_false,
                    ..
                } => {
                    let chosen = if regs[cond.index()].as_int() != 0 {
                        if_true
                    } else {
                        if_false
                    };
                    copy_reg(regs, dst.index(), chosen.index());
                }
                Inst::Cast { dst, to, src, from } => {
                    regs[dst.index()] = eval_cast(from, to, &regs[src.index()]);
                }
                Inst::Load {
                    dst,
                    ty,
                    addr,
                    offset,
                } => {
                    self.stats.memory_ops += 1;
                    let a = effective_addr(regs[addr.index()].as_int(), offset)?;
                    regs[dst.index()] = mem.load_scalar(ty, a)?;
                }
                Inst::Store {
                    ty,
                    addr,
                    offset,
                    value,
                } => {
                    self.stats.memory_ops += 1;
                    let a = effective_addr(regs[addr.index()].as_int(), offset)?;
                    mem.store_scalar(ty, a, &regs[value.index()])?;
                }
                Inst::Call {
                    dst,
                    ref callee,
                    ref args,
                } => {
                    // The argument buffer comes from a pool instead of being
                    // collected fresh per call; the error paths just drop it
                    // (the pool refills on the next successful call).
                    let mut argv = self.argv_pool.pop().unwrap_or_default();
                    argv.clear();
                    argv.extend(args.iter().map(|r| regs[r.index()].clone()));
                    let out = self.call_function(callee, &argv, mem, fuel)?;
                    argv.clear();
                    self.argv_pool.push(argv);
                    if let Some(d) = dst {
                        regs[d.index()] = out.ok_or_else(|| {
                            ExecError::Trap(format!("call to {callee} produced no value"))
                        })?;
                    }
                }
                Inst::VecWidth { dst, elem } => {
                    regs[dst.index()] =
                        Value::Int(elem.lanes_for_width(self.vector_width_bytes) as i64);
                }
                Inst::VecSplat { dst, elem, src } => {
                    let lanes = elem.lanes_for_width(self.vector_width_bytes) as usize;
                    regs[dst.index()] = Value::Vector(vec![regs[src.index()].clone(); lanes]);
                }
                Inst::VecLoad {
                    dst,
                    elem,
                    addr,
                    offset,
                } => {
                    self.stats.memory_ops += 1;
                    let lanes = elem.lanes_for_width(self.vector_width_bytes);
                    let base = effective_addr(regs[addr.index()].as_int(), offset)?;
                    let mut v = Vec::with_capacity(lanes as usize);
                    for i in 0..lanes {
                        v.push(mem.load_scalar(elem, base + i * elem.size_bytes())?);
                    }
                    regs[dst.index()] = Value::Vector(v);
                }
                Inst::VecStore {
                    elem,
                    addr,
                    offset,
                    value,
                } => {
                    self.stats.memory_ops += 1;
                    let base = effective_addr(regs[addr.index()].as_int(), offset)?;
                    let lanes = regs[value.index()].as_vector().to_vec();
                    for (i, lane) in lanes.iter().enumerate() {
                        mem.store_scalar(elem, base + i as u64 * elem.size_bytes(), lane)?;
                    }
                }
                Inst::VecBin {
                    op,
                    elem,
                    dst,
                    lhs,
                    rhs,
                } => {
                    let a = regs[lhs.index()].as_vector().to_vec();
                    let b = regs[rhs.index()].as_vector().to_vec();
                    if a.len() != b.len() {
                        return Err(ExecError::Trap("vector lane count mismatch".into()));
                    }
                    let mut out = Vec::with_capacity(a.len());
                    for (x, y) in a.iter().zip(&b) {
                        out.push(eval_bin(op, elem, x, y)?);
                    }
                    regs[dst.index()] = Value::Vector(out);
                }
                Inst::VecReduce { op, elem, dst, src } => {
                    let lanes = regs[src.index()].as_vector().to_vec();
                    let mut acc = lanes
                        .first()
                        .cloned()
                        .ok_or_else(|| ExecError::Trap("reduction of empty vector".into()))?;
                    for lane in &lanes[1..] {
                        acc = eval_bin(op.as_bin_op(), elem, &acc, lane)?;
                    }
                    regs[dst.index()] = acc;
                }
                Inst::Jump { target } => {
                    block = target;
                    index = 0;
                }
                Inst::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    block = if regs[cond.index()].as_int() != 0 {
                        then_bb
                    } else {
                        else_bb
                    };
                    index = 0;
                }
                Inst::Ret { value } => {
                    return Ok(value.map(|r| regs[r.index()].clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::ReduceOp;
    use crate::types::Type;

    fn run_simple(f: crate::Function, args: &[Value]) -> Option<Value> {
        let mut m = Module::new("t");
        let name = f.name.clone();
        m.add_function(f);
        let mut interp = Interpreter::new(&m);
        let mut mem = Memory::new(1 << 16);
        interp
            .run(&name, args, &mut mem)
            .expect("execution succeeds")
    }

    #[test]
    fn arithmetic_and_wrapping() {
        let mut b = FunctionBuilder::new(
            "wrap",
            &[Type::Scalar(ScalarType::U8), Type::Scalar(ScalarType::U8)],
            Some(Type::Scalar(ScalarType::U8)),
        );
        let x = b.param(0);
        let y = b.param(1);
        let s = b.bin(BinOp::Add, ScalarType::U8, x, y);
        b.ret(Some(s));
        let out = run_simple(b.finish(), &[Value::Int(200), Value::Int(100)]);
        assert_eq!(out, Some(Value::Int(44))); // 300 mod 256
    }

    #[test]
    fn unsigned_vs_signed_comparison() {
        assert_eq!(
            eval_cmp(CmpOp::Lt, ScalarType::I8, &Value::Int(-1), &Value::Int(1)),
            1
        );
        assert_eq!(
            eval_cmp(CmpOp::Lt, ScalarType::U64, &Value::Int(-1), &Value::Int(1)),
            0,
            "-1 as unsigned is the maximum value"
        );
        assert_eq!(
            eval_cmp(
                CmpOp::Ne,
                ScalarType::F32,
                &Value::Float(f64::NAN),
                &Value::Float(1.0)
            ),
            1
        );
        assert_eq!(
            eval_cmp(
                CmpOp::Eq,
                ScalarType::F32,
                &Value::Float(f64::NAN),
                &Value::Float(1.0)
            ),
            0
        );
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = FunctionBuilder::new(
            "div",
            &[Type::Scalar(ScalarType::I32), Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let x = b.param(0);
        let y = b.param(1);
        let q = b.bin(BinOp::Div, ScalarType::I32, x, y);
        b.ret(Some(q));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut interp = Interpreter::new(&m);
        let mut mem = Memory::new(64);
        let err = interp
            .run("div", &[Value::Int(1), Value::Int(0)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, ExecError::Trap(_)));
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let mut b = FunctionBuilder::new(
            "copy4",
            &[Type::Scalar(ScalarType::Ptr), Type::Scalar(ScalarType::Ptr)],
            None,
        );
        let dst = b.param(0);
        let src = b.param(1);
        for i in 0..4 {
            let v = b.load(ScalarType::F32, src, i * 4);
            b.store(ScalarType::F32, dst, i * 4, v);
        }
        b.ret(None);
        let mut m = Module::new("t");
        m.add_function(b.finish());

        let mut mem = Memory::new(1 << 10);
        let src = mem.alloc(16);
        let dst = mem.alloc(16);
        mem.write_f32s(src, &[1.5, -2.0, 3.25, 0.0]);
        let mut interp = Interpreter::new(&m);
        interp
            .run(
                "copy4",
                &[Value::Int(dst as i64), Value::Int(src as i64)],
                &mut mem,
            )
            .unwrap();
        assert_eq!(mem.read_f32s(dst, 4), vec![1.5, -2.0, 3.25, 0.0]);
        assert_eq!(interp.stats().memory_ops, 8);
    }

    #[test]
    fn vector_ops_match_scalar_semantics() {
        // Load 4 f32, multiply by a splat of 2.0, reduce-add.
        let mut b = FunctionBuilder::new(
            "vsum2x",
            &[Type::Scalar(ScalarType::Ptr)],
            Some(Type::Scalar(ScalarType::F32)),
        );
        let p = b.param(0);
        let two = b.const_float(ScalarType::F32, 2.0);
        let v = b.vec_load(ScalarType::F32, p, 0);
        let s = b.vec_splat(ScalarType::F32, two);
        let m_ = b.vec_bin(BinOp::Mul, ScalarType::F32, v, s);
        let r = b.vec_reduce(ReduceOp::Add, ScalarType::F32, m_);
        b.ret(Some(r));
        let mut m = Module::new("t");
        m.add_function(b.finish());

        let mut mem = Memory::new(1 << 10);
        let p = mem.alloc(16);
        mem.write_f32s(p, &[1.0, 2.0, 3.0, 4.0]);
        let mut interp = Interpreter::new(&m);
        let out = interp
            .run("vsum2x", &[Value::Int(p as i64)], &mut mem)
            .unwrap();
        assert_eq!(out, Some(Value::Float(20.0)));
    }

    #[test]
    fn vec_width_respects_configuration() {
        let mut b = FunctionBuilder::new("w", &[], Some(Type::Scalar(ScalarType::I64)));
        let w = b.vec_width(ScalarType::U8);
        b.ret(Some(w));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut mem = Memory::new(64);
        let mut interp = Interpreter::new(&m).with_vector_width(32);
        assert_eq!(
            interp.run("w", &[], &mut mem).unwrap(),
            Some(Value::Int(32))
        );
        let mut interp16 = Interpreter::new(&m);
        assert_eq!(
            interp16.run("w", &[], &mut mem).unwrap(),
            Some(Value::Int(16))
        );
    }

    #[test]
    fn shift_counts_mask_modulo_64_on_every_type() {
        let shl = |ty, a: i64, b: i64| {
            eval_bin(BinOp::Shl, ty, &Value::Int(a), &Value::Int(b))
                .unwrap()
                .as_int()
        };
        let shr = |ty, a: i64, b: i64| {
            eval_bin(BinOp::Shr, ty, &Value::Int(a), &Value::Int(b))
                .unwrap()
                .as_int()
        };
        // Counts >= 64 wrap around the 64-bit register width...
        assert_eq!(shl(ScalarType::I64, 1, 64), 1);
        assert_eq!(shl(ScalarType::I64, 1, 65), 2);
        assert_eq!(shl(ScalarType::I64, 1, 127), i64::MIN);
        // ...negative counts reduce to `count & 63`...
        assert_eq!(shl(ScalarType::I64, 1, -1), i64::MIN); // -1 & 63 == 63
        assert_eq!(shr(ScalarType::I64, i64::MIN, -1), -1); // arithmetic
                                                            // ...and the mask is 64-wide even for narrow types: the bit leaves
                                                            // the register's low 32 bits instead of wrapping at the type width.
        assert_eq!(shl(ScalarType::I32, 1, 33), 0);
        assert_eq!(shl(ScalarType::I32, 1, 65), 2);
        // Arithmetic vs logical right shift across the sign boundary.
        assert_eq!(shr(ScalarType::I32, -8, 1), -4);
        assert_eq!(shr(ScalarType::U32, 0xffff_ffff, 1), 0x7fff_ffff);
        // A narrow negative keeps its sign fill past the operand width.
        assert_eq!(shr(ScalarType::I8, -1, 40), -1);
    }

    #[test]
    fn hostile_effective_addresses_trap_instead_of_panicking() {
        // Regression: `(base + offset) as u64` used to panic on overflow in
        // debug builds (i64::MAX base) and, for small negative bases, wrap
        // `addr + len` past the bounds check and panic on the slice.
        let mut b = FunctionBuilder::new(
            "peek",
            &[Type::Scalar(ScalarType::Ptr)],
            Some(Type::Scalar(ScalarType::I64)),
        );
        let p = b.param(0);
        let v = b.load(ScalarType::I64, p, 8);
        b.ret(Some(v));
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut interp = Interpreter::new(&m);
        let mut mem = Memory::new(1 << 10);
        for base in [
            -9i64,        // effective address -1: negative base
            -12,          // effective -4: wrapped `addr + len` over u64::MAX pre-fix
            i64::MIN,     // extreme negative
            i64::MAX,     // base + offset overflows i64 (panicked in debug pre-fix)
            i64::MAX - 8, // effective i64::MAX: far past the end, no i64 overflow
        ] {
            let err = interp
                .run("peek", &[Value::Int(base)], &mut mem)
                .unwrap_err();
            assert!(
                matches!(err, ExecError::Trap(_)),
                "base {base} must trap, got {err:?}"
            );
        }
        // The raw memory API rejects a wrapping `addr + len` as well (the
        // address a negative base reinterprets to, taken directly).
        assert!(matches!(
            mem.load_scalar(ScalarType::I64, u64::MAX - 4).unwrap_err(),
            ExecError::Trap(_)
        ));
        // A straddling access (valid base, end past the memory) traps too.
        let last = (1 << 10) - 4;
        let err = interp
            .run("peek", &[Value::Int(last - 8)], &mut mem)
            .unwrap_err();
        assert!(matches!(err, ExecError::Trap(_)));
        // And an in-bounds access still works.
        assert_eq!(
            interp.run("peek", &[Value::Int(16)], &mut mem).unwrap(),
            Some(Value::Int(0))
        );
    }

    #[test]
    fn hostile_store_and_vector_addresses_trap_too() {
        let mut b = FunctionBuilder::new("poke", &[Type::Scalar(ScalarType::Ptr)], None);
        let p = b.param(0);
        let one = b.const_int(ScalarType::I32, 1);
        b.store(ScalarType::I32, p, 0, one);
        b.ret(None);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut interp = Interpreter::new(&m);
        let mut mem = Memory::new(256);
        for base in [-1i64, -4, i64::MAX] {
            let err = interp
                .run("poke", &[Value::Int(base)], &mut mem)
                .unwrap_err();
            assert!(matches!(err, ExecError::Trap(_)), "store base {base}");
        }

        let mut b = FunctionBuilder::new("vpeek", &[Type::Scalar(ScalarType::Ptr)], None);
        let p = b.param(0);
        let _ = b.vec_load(ScalarType::F32, p, 0);
        b.ret(None);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut interp = Interpreter::new(&m);
        for base in [-1i64, i64::MAX, 250] {
            // 250: the 16-byte vector straddles the end of the 256-byte memory.
            let err = interp
                .run("vpeek", &[Value::Int(base)], &mut mem)
                .unwrap_err();
            assert!(matches!(err, ExecError::Trap(_)), "vector base {base}");
        }
    }

    #[test]
    fn out_of_fuel_is_detected() {
        let mut b = FunctionBuilder::new("spin", &[], None);
        let header = b.new_block();
        b.jump(header);
        b.switch_to(header);
        b.jump(header);
        let mut m = Module::new("t");
        m.add_function(b.finish());
        let mut interp = Interpreter::new(&m).with_fuel(1000);
        let mut mem = Memory::new(64);
        assert_eq!(
            interp.run("spin", &[], &mut mem).unwrap_err(),
            ExecError::OutOfFuel
        );
    }

    #[test]
    fn calls_pass_arguments_and_return_values() {
        let mut callee = FunctionBuilder::new(
            "square",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let x = callee.param(0);
        let s = callee.bin(BinOp::Mul, ScalarType::I32, x, x);
        callee.ret(Some(s));

        let mut caller = FunctionBuilder::new(
            "sum_of_squares",
            &[Type::Scalar(ScalarType::I32), Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let a = caller.param(0);
        let bb = caller.param(1);
        let sa = caller
            .call("square", &[a], Some(Type::Scalar(ScalarType::I32)))
            .unwrap();
        let sb = caller
            .call("square", &[bb], Some(Type::Scalar(ScalarType::I32)))
            .unwrap();
        let t = caller.bin(BinOp::Add, ScalarType::I32, sa, sb);
        caller.ret(Some(t));

        let mut m = Module::new("t");
        m.add_function(callee.finish());
        m.add_function(caller.finish());
        let mut interp = Interpreter::new(&m);
        let mut mem = Memory::new(64);
        let out = interp
            .run("sum_of_squares", &[Value::Int(3), Value::Int(4)], &mut mem)
            .unwrap();
        assert_eq!(out, Some(Value::Int(25)));
        assert_eq!(interp.stats().calls, 3);
    }

    #[test]
    fn null_and_out_of_bounds_accesses_trap() {
        let mut mem = Memory::new(32);
        assert!(mem.load_scalar(ScalarType::I32, 0).is_err());
        assert!(mem.load_scalar(ScalarType::I64, 30).is_err());
        assert!(mem
            .store_scalar(ScalarType::I32, 0, &Value::Int(1))
            .is_err());
    }

    #[test]
    fn casts_between_domains() {
        assert_eq!(
            eval_cast(ScalarType::F64, ScalarType::I32, &Value::Float(3.9)),
            Value::Int(3)
        );
        assert_eq!(
            eval_cast(ScalarType::I32, ScalarType::F32, &Value::Int(-2)),
            Value::Float(-2.0)
        );
        assert_eq!(
            eval_cast(ScalarType::U8, ScalarType::F32, &Value::Int(255)),
            Value::Float(255.0)
        );
        assert_eq!(
            eval_cast(ScalarType::I64, ScalarType::U8, &Value::Int(257)),
            Value::Int(1)
        );
    }
}
