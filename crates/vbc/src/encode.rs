//! Compact binary encoding of bytecode modules.
//!
//! The paper argues (Section 2.1, citing CLI size studies) that a
//! target-independent bytecode is a *compact* deployment format compared to
//! native binaries. This module provides the deployment format of the
//! reproduction: a byte-oriented encoding with LEB128 variable-length
//! integers, used by the code-size experiment (E5) and by round-trip tests.
//!
//! The decoder is a **trust boundary**: encoded modules travel across
//! processes and now persist on disk in the runtime's artifact store, where
//! they can be truncated, corrupted or version-skewed between the process
//! that wrote them and the one that reads them. Every length is
//! overflow-checked, every LEB128 terminator is validated for canonicality
//! (non-canonical encodings would let two byte strings alias one value),
//! and a decode only succeeds if it consumes the buffer *exactly* —
//! trailing bytes are rejected, so a concatenated or padded entry can never
//! decode silently. Hostile inputs must always produce a [`DecodeError`],
//! never a panic and never a wrong module.
//!
//! The low-level primitives ([`Writer`], [`Reader`]) are public so sibling
//! wire formats (the artifact store's compiled-program encoding) share one
//! LEB128/string/float discipline instead of growing divergent copies.

use crate::annotations::{AnnotationSet, AnnotationValue};
use crate::function::{Block, Function};
use crate::inst::{BinOp, BlockId, CmpOp, Immediate, Inst, ReduceOp, UnOp, VReg};
use crate::module::Module;
use crate::types::{ScalarType, Type};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Magic bytes at the start of every encoded module.
pub const MAGIC: &[u8; 4] = b"SVBC";
/// Current format version.
pub const VERSION: u8 = 1;

/// An error raised while decoding a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not supported.
    BadVersion(u8),
    /// The buffer ended in the middle of a field.
    UnexpectedEof,
    /// A tag byte does not correspond to any known construct.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A string field is not valid UTF-8.
    BadString,
    /// The buffer contains well-formed data followed by extra bytes. A
    /// decode must consume its input exactly: accepting a padded or
    /// concatenated buffer would let distinct byte strings decode to the
    /// same module.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "missing SVBC magic bytes"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            DecodeError::BadString => write!(f, "invalid UTF-8 in string field"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after a complete value"),
        }
    }
}

impl Error for DecodeError {}

/// Byte destination of a [`Writer`]: an actual buffer, or a counter that
/// only measures. The counter is what lets [`encoded_size`] report the
/// exact encoded length without allocating the encoding.
#[derive(Debug)]
enum Sink {
    Buffer(Vec<u8>),
    Counter(usize),
}

/// Low-level encoder for the wire formats of this workspace: bytes, LEB128
/// variable-length integers (unsigned, and signed via zigzag), raw IEEE-754
/// doubles and length-prefixed UTF-8 strings.
///
/// Public so sibling wire formats (the runtime's persistent artifact store)
/// encode with exactly the discipline [`encode_module`] uses, and decode
/// with the matching hardened [`Reader`].
#[derive(Debug)]
pub struct Writer {
    out: Sink,
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

impl Writer {
    /// A writer that accumulates bytes into a buffer.
    pub fn new() -> Self {
        Writer {
            out: Sink::Buffer(Vec::new()),
        }
    }
    /// A writer that only counts bytes (for size measurement without
    /// allocation — see [`encoded_size`]).
    fn counting() -> Self {
        Writer {
            out: Sink::Counter(0),
        }
    }
    /// Bytes written so far.
    pub fn len(&self) -> usize {
        match &self.out {
            Sink::Buffer(buf) => buf.len(),
            Sink::Counter(n) => *n,
        }
    }
    /// `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The accumulated bytes.
    ///
    /// # Panics
    ///
    /// Panics on a counting writer, which never materialized them.
    pub fn into_bytes(self) -> Vec<u8> {
        match self.out {
            Sink::Buffer(buf) => buf,
            Sink::Counter(_) => panic!("a counting Writer holds no bytes"),
        }
    }
    fn push(&mut self, b: u8) {
        match &mut self.out {
            Sink::Buffer(buf) => buf.push(b),
            Sink::Counter(n) => *n += 1,
        }
    }
    /// Append raw bytes verbatim.
    pub fn bytes(&mut self, bytes: &[u8]) {
        match &mut self.out {
            Sink::Buffer(buf) => buf.extend_from_slice(bytes),
            Sink::Counter(n) => *n += bytes.len(),
        }
    }
    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.push(v);
    }
    /// Append a fixed-width little-endian `u64` (used by headers whose
    /// layout must not depend on the value, e.g. checksums).
    pub fn u64_le(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    /// Append an unsigned LEB128 integer.
    pub fn uleb(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.push(byte);
                break;
            }
            self.push(byte | 0x80);
        }
    }
    /// Append a signed LEB128 integer (zigzag encoding).
    pub fn sleb(&mut self, v: i64) {
        self.uleb(((v << 1) ^ (v >> 63)) as u64);
    }
    /// Append an `f64` as its raw little-endian bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }
    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.uleb(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Cap on speculative `Vec::with_capacity` hints while decoding.
///
/// A corrupted length field can claim up to 2⁶⁴ elements; passing that to
/// `with_capacity` would turn one flipped bit into an allocation abort —
/// a panic the decoder promises never to produce. Collections still grow
/// to their true decoded size; this bounds only the pre-allocation hint,
/// and truncated inputs fail with [`DecodeError::UnexpectedEof`] long
/// before a hostile length is ever filled in.
const MAX_PREALLOC: usize = 1 << 12;

/// A pre-allocation hint that a hostile length cannot weaponize.
fn cap_hint(n: usize) -> usize {
    n.min(MAX_PREALLOC)
}

/// Hardened decoder over a byte slice, the counterpart of [`Writer`].
///
/// All reads are bounds-checked (no arithmetic overflow on hostile
/// lengths), LEB128 terminators are validated for canonicality, and the
/// caller can assert full consumption via [`Reader::finish`]. See the
/// [module documentation](self) for the trust-boundary rationale.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// The unconsumed tail of the buffer.
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
    /// Assert the buffer was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] if unconsumed bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(())
    }
    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] at the end of the buffer.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }
    /// Read a fixed-width little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn u64_le(&mut self) -> Result<u64, DecodeError> {
        if self.remaining() < 8 {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(bytes))
    }
    /// Read an unsigned LEB128 integer.
    ///
    /// Rejects non-canonical encodings: a final byte whose bits would be
    /// shifted past bit 63 is an error, never silently truncated. (The
    /// historical decoder kept only the low bit of a 10th byte, so e.g.
    /// `ff…ff 03` aliased to the same value as `ff…ff 01` — two distinct
    /// byte strings decoding to one integer, which breaks every consumer
    /// that equates encodings with values, fingerprinting included.)
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] on truncation, or
    /// [`DecodeError::BadTag`] if the value overflows 64 bits or the final
    /// byte carries discarded bits.
    pub fn uleb(&mut self) -> Result<u64, DecodeError> {
        let mut shift = 0u32;
        let mut out = 0u64;
        loop {
            let b = self.u8()?;
            let bits = u64::from(b & 0x7f);
            // An 11th byte (shift 70) always overflows; a 10th byte
            // (shift 63) may only contribute its lowest bit.
            if shift >= 64 || (shift > 57 && bits >> (64 - shift) != 0) {
                return Err(DecodeError::BadTag {
                    what: "uleb128",
                    tag: b,
                });
            }
            out |= bits << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }
    /// Read a signed LEB128 integer (zigzag encoding).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reader::uleb`].
    pub fn sleb(&mut self) -> Result<i64, DecodeError> {
        let z = self.uleb()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
    /// Read an `f64` from its raw little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64_le()?))
    }
    /// Read a length-prefixed UTF-8 string.
    ///
    /// The length is added to the cursor with `checked_add`: a hostile
    /// LEB128 length near `u64::MAX` must fail cleanly as truncation, not
    /// overflow `usize` (a panic in debug builds — or, worse, a wrapped
    /// bounds check that reads the wrong bytes in release builds).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEof`] if the claimed length
    /// overruns the buffer, or [`DecodeError::BadString`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = usize::try_from(self.uleb()?).map_err(|_| DecodeError::UnexpectedEof)?;
        let end = self
            .pos
            .checked_add(len)
            .ok_or(DecodeError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| DecodeError::BadString)?
            .to_owned();
        self.pos = end;
        Ok(s)
    }
}

fn scalar_tag(t: ScalarType) -> u8 {
    match t {
        ScalarType::I8 => 0,
        ScalarType::I16 => 1,
        ScalarType::I32 => 2,
        ScalarType::I64 => 3,
        ScalarType::U8 => 4,
        ScalarType::U16 => 5,
        ScalarType::U32 => 6,
        ScalarType::U64 => 7,
        ScalarType::F32 => 8,
        ScalarType::F64 => 9,
        ScalarType::Ptr => 10,
    }
}

fn scalar_from_tag(tag: u8) -> Result<ScalarType, DecodeError> {
    ScalarType::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            what: "scalar type",
            tag,
        })
}

fn binop_tag(op: BinOp) -> u8 {
    BinOp::ALL.iter().position(|o| *o == op).expect("op in ALL") as u8
}

fn binop_from_tag(tag: u8) -> Result<BinOp, DecodeError> {
    BinOp::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            what: "binary operator",
            tag,
        })
}

fn cmpop_tag(op: CmpOp) -> u8 {
    CmpOp::ALL.iter().position(|o| *o == op).expect("op in ALL") as u8
}

fn cmpop_from_tag(tag: u8) -> Result<CmpOp, DecodeError> {
    CmpOp::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag {
            what: "comparison operator",
            tag,
        })
}

fn write_type(w: &mut Writer, t: Type) {
    match t {
        Type::Scalar(s) => {
            w.u8(0);
            w.u8(scalar_tag(s));
        }
        Type::Vector(s) => {
            w.u8(1);
            w.u8(scalar_tag(s));
        }
    }
}

fn read_type(r: &mut Reader<'_>) -> Result<Type, DecodeError> {
    let kind = r.u8()?;
    let s = scalar_from_tag(r.u8()?)?;
    match kind {
        0 => Ok(Type::Scalar(s)),
        1 => Ok(Type::Vector(s)),
        tag => Err(DecodeError::BadTag { what: "type", tag }),
    }
}

fn write_value(w: &mut Writer, v: &AnnotationValue) {
    match v {
        AnnotationValue::Int(x) => {
            w.u8(0);
            w.sleb(*x);
        }
        AnnotationValue::Float(x) => {
            w.u8(1);
            w.f64(*x);
        }
        AnnotationValue::Bool(x) => {
            w.u8(2);
            w.u8(u8::from(*x));
        }
        AnnotationValue::Str(x) => {
            w.u8(3);
            w.str(x);
        }
        AnnotationValue::List(xs) => {
            w.u8(4);
            w.uleb(xs.len() as u64);
            for x in xs {
                write_value(w, x);
            }
        }
        AnnotationValue::Map(m) => {
            w.u8(5);
            w.uleb(m.len() as u64);
            for (k, x) in m {
                w.str(k);
                write_value(w, x);
            }
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<AnnotationValue, DecodeError> {
    Ok(match r.u8()? {
        0 => AnnotationValue::Int(r.sleb()?),
        1 => AnnotationValue::Float(r.f64()?),
        2 => AnnotationValue::Bool(r.u8()? != 0),
        3 => AnnotationValue::Str(r.str()?),
        4 => {
            let n = r.uleb()? as usize;
            let mut xs = Vec::with_capacity(cap_hint(n));
            for _ in 0..n {
                xs.push(read_value(r)?);
            }
            AnnotationValue::List(xs)
        }
        5 => {
            let n = r.uleb()? as usize;
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let k = r.str()?;
                m.insert(k, read_value(r)?);
            }
            AnnotationValue::Map(m)
        }
        tag => {
            return Err(DecodeError::BadTag {
                what: "annotation value",
                tag,
            })
        }
    })
}

fn write_annotations(w: &mut Writer, a: &AnnotationSet) {
    let entries: Vec<_> = a.iter().collect();
    w.uleb(entries.len() as u64);
    for (k, v) in entries {
        w.str(k);
        write_value(w, v);
    }
}

fn read_annotations(r: &mut Reader<'_>) -> Result<AnnotationSet, DecodeError> {
    let n = r.uleb()? as usize;
    let mut a = AnnotationSet::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = read_value(r)?;
        a.set(&k, v);
    }
    Ok(a)
}

fn write_inst(w: &mut Writer, inst: &Inst) {
    match inst {
        Inst::Const { dst, ty, imm } => {
            w.u8(0);
            w.uleb(u64::from(dst.0));
            w.u8(scalar_tag(*ty));
            match imm {
                Immediate::Int(v) => {
                    w.u8(0);
                    w.sleb(*v);
                }
                Immediate::Float(v) => {
                    w.u8(1);
                    w.f64(*v);
                }
            }
        }
        Inst::Move { dst, ty, src } => {
            w.u8(1);
            w.uleb(u64::from(dst.0));
            w.u8(scalar_tag(*ty));
            w.uleb(u64::from(src.0));
        }
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(2);
            w.u8(binop_tag(*op));
            w.u8(scalar_tag(*ty));
            w.uleb(u64::from(dst.0));
            w.uleb(u64::from(lhs.0));
            w.uleb(u64::from(rhs.0));
        }
        Inst::Un { op, ty, dst, src } => {
            w.u8(3);
            w.u8(match op {
                UnOp::Neg => 0,
                UnOp::Not => 1,
            });
            w.u8(scalar_tag(*ty));
            w.uleb(u64::from(dst.0));
            w.uleb(u64::from(src.0));
        }
        Inst::Cmp {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(4);
            w.u8(cmpop_tag(*op));
            w.u8(scalar_tag(*ty));
            w.uleb(u64::from(dst.0));
            w.uleb(u64::from(lhs.0));
            w.uleb(u64::from(rhs.0));
        }
        Inst::Select {
            ty,
            dst,
            cond,
            if_true,
            if_false,
        } => {
            w.u8(5);
            w.u8(scalar_tag(*ty));
            w.uleb(u64::from(dst.0));
            w.uleb(u64::from(cond.0));
            w.uleb(u64::from(if_true.0));
            w.uleb(u64::from(if_false.0));
        }
        Inst::Cast { dst, to, src, from } => {
            w.u8(6);
            w.uleb(u64::from(dst.0));
            w.u8(scalar_tag(*to));
            w.uleb(u64::from(src.0));
            w.u8(scalar_tag(*from));
        }
        Inst::Load {
            dst,
            ty,
            addr,
            offset,
        } => {
            w.u8(7);
            w.uleb(u64::from(dst.0));
            w.u8(scalar_tag(*ty));
            w.uleb(u64::from(addr.0));
            w.sleb(*offset);
        }
        Inst::Store {
            ty,
            addr,
            offset,
            value,
        } => {
            w.u8(8);
            w.u8(scalar_tag(*ty));
            w.uleb(u64::from(addr.0));
            w.sleb(*offset);
            w.uleb(u64::from(value.0));
        }
        Inst::Call { dst, callee, args } => {
            w.u8(9);
            match dst {
                Some(d) => {
                    w.u8(1);
                    w.uleb(u64::from(d.0));
                }
                None => w.u8(0),
            }
            w.str(callee);
            w.uleb(args.len() as u64);
            for a in args {
                w.uleb(u64::from(a.0));
            }
        }
        Inst::VecWidth { dst, elem } => {
            w.u8(10);
            w.uleb(u64::from(dst.0));
            w.u8(scalar_tag(*elem));
        }
        Inst::VecSplat { dst, elem, src } => {
            w.u8(11);
            w.uleb(u64::from(dst.0));
            w.u8(scalar_tag(*elem));
            w.uleb(u64::from(src.0));
        }
        Inst::VecLoad {
            dst,
            elem,
            addr,
            offset,
        } => {
            w.u8(12);
            w.uleb(u64::from(dst.0));
            w.u8(scalar_tag(*elem));
            w.uleb(u64::from(addr.0));
            w.sleb(*offset);
        }
        Inst::VecStore {
            elem,
            addr,
            offset,
            value,
        } => {
            w.u8(13);
            w.u8(scalar_tag(*elem));
            w.uleb(u64::from(addr.0));
            w.sleb(*offset);
            w.uleb(u64::from(value.0));
        }
        Inst::VecBin {
            op,
            elem,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(14);
            w.u8(binop_tag(*op));
            w.u8(scalar_tag(*elem));
            w.uleb(u64::from(dst.0));
            w.uleb(u64::from(lhs.0));
            w.uleb(u64::from(rhs.0));
        }
        Inst::VecReduce { op, elem, dst, src } => {
            w.u8(15);
            w.u8(match op {
                ReduceOp::Add => 0,
                ReduceOp::Min => 1,
                ReduceOp::Max => 2,
            });
            w.u8(scalar_tag(*elem));
            w.uleb(u64::from(dst.0));
            w.uleb(u64::from(src.0));
        }
        Inst::Jump { target } => {
            w.u8(16);
            w.uleb(u64::from(target.0));
        }
        Inst::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            w.u8(17);
            w.uleb(u64::from(cond.0));
            w.uleb(u64::from(then_bb.0));
            w.uleb(u64::from(else_bb.0));
        }
        Inst::Ret { value } => {
            w.u8(18);
            match value {
                Some(v) => {
                    w.u8(1);
                    w.uleb(u64::from(v.0));
                }
                None => w.u8(0),
            }
        }
    }
}

fn read_vreg(r: &mut Reader<'_>) -> Result<VReg, DecodeError> {
    Ok(VReg(r.uleb()? as u32))
}

fn read_inst(r: &mut Reader<'_>) -> Result<Inst, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => {
            let dst = read_vreg(r)?;
            let ty = scalar_from_tag(r.u8()?)?;
            let imm = match r.u8()? {
                0 => Immediate::Int(r.sleb()?),
                1 => Immediate::Float(r.f64()?),
                t => {
                    return Err(DecodeError::BadTag {
                        what: "immediate",
                        tag: t,
                    })
                }
            };
            Inst::Const { dst, ty, imm }
        }
        1 => Inst::Move {
            dst: read_vreg(r)?,
            ty: scalar_from_tag(r.u8()?)?,
            src: read_vreg(r)?,
        },
        2 => Inst::Bin {
            op: binop_from_tag(r.u8()?)?,
            ty: scalar_from_tag(r.u8()?)?,
            dst: read_vreg(r)?,
            lhs: read_vreg(r)?,
            rhs: read_vreg(r)?,
        },
        3 => Inst::Un {
            op: match r.u8()? {
                0 => UnOp::Neg,
                1 => UnOp::Not,
                t => {
                    return Err(DecodeError::BadTag {
                        what: "unary operator",
                        tag: t,
                    })
                }
            },
            ty: scalar_from_tag(r.u8()?)?,
            dst: read_vreg(r)?,
            src: read_vreg(r)?,
        },
        4 => Inst::Cmp {
            op: cmpop_from_tag(r.u8()?)?,
            ty: scalar_from_tag(r.u8()?)?,
            dst: read_vreg(r)?,
            lhs: read_vreg(r)?,
            rhs: read_vreg(r)?,
        },
        5 => Inst::Select {
            ty: scalar_from_tag(r.u8()?)?,
            dst: read_vreg(r)?,
            cond: read_vreg(r)?,
            if_true: read_vreg(r)?,
            if_false: read_vreg(r)?,
        },
        6 => Inst::Cast {
            dst: read_vreg(r)?,
            to: scalar_from_tag(r.u8()?)?,
            src: read_vreg(r)?,
            from: scalar_from_tag(r.u8()?)?,
        },
        7 => Inst::Load {
            dst: read_vreg(r)?,
            ty: scalar_from_tag(r.u8()?)?,
            addr: read_vreg(r)?,
            offset: r.sleb()?,
        },
        8 => Inst::Store {
            ty: scalar_from_tag(r.u8()?)?,
            addr: read_vreg(r)?,
            offset: r.sleb()?,
            value: read_vreg(r)?,
        },
        9 => {
            let dst = if r.u8()? != 0 {
                Some(read_vreg(r)?)
            } else {
                None
            };
            let callee = r.str()?;
            let n = r.uleb()? as usize;
            let mut args = Vec::with_capacity(cap_hint(n));
            for _ in 0..n {
                args.push(read_vreg(r)?);
            }
            Inst::Call { dst, callee, args }
        }
        10 => Inst::VecWidth {
            dst: read_vreg(r)?,
            elem: scalar_from_tag(r.u8()?)?,
        },
        11 => Inst::VecSplat {
            dst: read_vreg(r)?,
            elem: scalar_from_tag(r.u8()?)?,
            src: read_vreg(r)?,
        },
        12 => Inst::VecLoad {
            dst: read_vreg(r)?,
            elem: scalar_from_tag(r.u8()?)?,
            addr: read_vreg(r)?,
            offset: r.sleb()?,
        },
        13 => Inst::VecStore {
            elem: scalar_from_tag(r.u8()?)?,
            addr: read_vreg(r)?,
            offset: r.sleb()?,
            value: read_vreg(r)?,
        },
        14 => Inst::VecBin {
            op: binop_from_tag(r.u8()?)?,
            elem: scalar_from_tag(r.u8()?)?,
            dst: read_vreg(r)?,
            lhs: read_vreg(r)?,
            rhs: read_vreg(r)?,
        },
        15 => Inst::VecReduce {
            op: match r.u8()? {
                0 => ReduceOp::Add,
                1 => ReduceOp::Min,
                2 => ReduceOp::Max,
                t => {
                    return Err(DecodeError::BadTag {
                        what: "reduce operator",
                        tag: t,
                    })
                }
            },
            elem: scalar_from_tag(r.u8()?)?,
            dst: read_vreg(r)?,
            src: read_vreg(r)?,
        },
        16 => Inst::Jump {
            target: BlockId(r.uleb()? as u32),
        },
        17 => Inst::Branch {
            cond: read_vreg(r)?,
            then_bb: BlockId(r.uleb()? as u32),
            else_bb: BlockId(r.uleb()? as u32),
        },
        18 => Inst::Ret {
            value: if r.u8()? != 0 {
                Some(read_vreg(r)?)
            } else {
                None
            },
        },
        t => {
            return Err(DecodeError::BadTag {
                what: "instruction",
                tag: t,
            })
        }
    })
}

fn write_function(w: &mut Writer, f: &Function) {
    w.str(&f.name);
    w.uleb(f.params.len() as u64);
    for (r, t) in &f.params {
        w.uleb(u64::from(r.0));
        write_type(w, *t);
    }
    match f.ret {
        Some(t) => {
            w.u8(1);
            write_type(w, t);
        }
        None => w.u8(0),
    }
    w.uleb(f.vreg_types.len() as u64);
    for t in &f.vreg_types {
        write_type(w, *t);
    }
    w.uleb(u64::from(f.entry.0));
    w.uleb(f.blocks.len() as u64);
    for b in &f.blocks {
        w.uleb(b.insts.len() as u64);
        for inst in &b.insts {
            write_inst(w, inst);
        }
    }
    write_annotations(w, &f.annotations);
}

fn read_function(r: &mut Reader<'_>) -> Result<Function, DecodeError> {
    let name = r.str()?;
    let nparams = r.uleb()? as usize;
    let mut params = Vec::with_capacity(cap_hint(nparams));
    for _ in 0..nparams {
        let reg = read_vreg(r)?;
        let ty = read_type(r)?;
        params.push((reg, ty));
    }
    let ret = if r.u8()? != 0 {
        Some(read_type(r)?)
    } else {
        None
    };
    let nvregs = r.uleb()? as usize;
    let mut vreg_types = Vec::with_capacity(cap_hint(nvregs));
    for _ in 0..nvregs {
        vreg_types.push(read_type(r)?);
    }
    let entry = BlockId(r.uleb()? as u32);
    let nblocks = r.uleb()? as usize;
    let mut blocks = Vec::with_capacity(cap_hint(nblocks));
    for id in 0..nblocks {
        let ninsts = r.uleb()? as usize;
        let mut insts = Vec::with_capacity(cap_hint(ninsts));
        for _ in 0..ninsts {
            insts.push(read_inst(r)?);
        }
        blocks.push(Block {
            id: BlockId(id as u32),
            insts,
        });
    }
    let annotations = read_annotations(r)?;
    Ok(Function {
        name,
        params,
        ret,
        vreg_types,
        blocks,
        entry,
        annotations,
    })
}

/// Encode a module into the compact deployment format.
///
/// # Examples
///
/// ```
/// use splitc_vbc::{encode_module, decode_module, Module};
///
/// let m = Module::new("empty");
/// let bytes = encode_module(&m);
/// assert_eq!(decode_module(&bytes).unwrap(), m);
/// ```
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut w = Writer::new();
    write_module(&mut w, m);
    w.into_bytes()
}

fn write_module(w: &mut Writer, m: &Module) {
    w.bytes(MAGIC);
    w.u8(VERSION);
    w.str(&m.name);
    w.uleb(m.functions().len() as u64);
    for f in m.functions() {
        write_function(w, f);
    }
    write_annotations(w, &m.annotations);
}

/// Decode a module previously produced by [`encode_module`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated, has the wrong magic
/// or version, contains invalid tags, or carries trailing bytes after the
/// module (a decode must consume its input exactly).
pub fn decode_module(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    r.pos = 4;
    let version = r.u8()?;
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let name = r.str()?;
    let mut m = Module::new(&name);
    let nfuncs = r.uleb()? as usize;
    for _ in 0..nfuncs {
        m.add_function(read_function(&mut r)?);
    }
    m.annotations = read_annotations(&mut r)?;
    r.finish()?;
    Ok(m)
}

/// Size in bytes of the compact encoding of `m`.
///
/// Runs the encoder against a counting sink, so measuring costs no
/// allocation — the bytes are never materialized.
pub fn encoded_size(m: &Module) -> usize {
    let mut w = Writer::counting();
    write_module(&mut w, m);
    w.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{ScalarType, Type};

    fn sample_module() -> Module {
        let mut b = FunctionBuilder::new(
            "saxpy",
            &[
                Type::Scalar(ScalarType::I32),
                Type::Scalar(ScalarType::F32),
                Type::Scalar(ScalarType::Ptr),
                Type::Scalar(ScalarType::Ptr),
            ],
            None,
        );
        let x = b.param(2);
        let a = b.param(1);
        let v = b.vec_load(ScalarType::F32, x, 0);
        let s = b.vec_splat(ScalarType::F32, a);
        let p = b.vec_bin(BinOp::Mul, ScalarType::F32, v, s);
        b.vec_store(ScalarType::F32, x, 0, p);
        let c = b.const_int(ScalarType::I32, 0);
        let d = b.cmp(CmpOp::Eq, ScalarType::I32, c, c);
        let exit = b.new_block();
        b.branch(d, exit, exit);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        f.annotations.set("splitc.loop.trip_count_hint", 4096i64);
        let mut m = Module::new("kernels");
        m.add_function(f);
        m.annotations.set("splitc.offline.optimized", true);
        m
    }

    #[test]
    fn round_trip_preserves_module() {
        let m = sample_module();
        let bytes = encode_module(&m);
        let decoded = decode_module(&bytes).expect("decodes");
        assert_eq!(decoded, m);
    }

    #[test]
    fn encoding_is_compact() {
        let m = sample_module();
        let compact = encoded_size(&m);
        // The compact format should be far smaller than a naive debug dump.
        let debug = format!("{m:?}").len();
        assert!(compact * 4 < debug, "compact {compact} vs debug {debug}");
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        assert_eq!(decode_module(b"XXXX"), Err(DecodeError::BadMagic));
        let mut bytes = encode_module(&Module::new("m"));
        bytes[4] = 99;
        assert_eq!(decode_module(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_module(&sample_module());
        for cut in [5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_module(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn leb128_round_trip_extremes() {
        let mut w = Writer::new();
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            w.sleb(v);
        }
        for v in [0u64, 127, 128, 16_383, 16_384, u64::MAX] {
            w.uleb(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456_789] {
            assert_eq!(r.sleb().unwrap(), v);
        }
        for v in [0u64, 127, 128, 16_383, 16_384, u64::MAX] {
            assert_eq!(r.uleb().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn uleb_rejects_non_canonical_final_bytes() {
        // u64::MAX canonical: nine 0xff continuation bytes then 0x01 — the
        // tenth byte may carry exactly one payload bit.
        let max = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        assert_eq!(Reader::new(&max).uleb().unwrap(), u64::MAX);
        // A tenth byte with any discarded bit set used to alias to the same
        // value; it must be rejected now.
        for tenth in [0x02u8, 0x03, 0x7f] {
            let mut bytes = max;
            bytes[9] = tenth;
            assert!(
                matches!(
                    Reader::new(&bytes).uleb(),
                    Err(DecodeError::BadTag {
                        what: "uleb128",
                        ..
                    })
                ),
                "tenth byte {tenth:#04x} must be rejected"
            );
        }
        // An eleventh byte always overflows 64 bits.
        let eleven = [0xff; 11];
        assert!(Reader::new(&eleven).uleb().is_err());
        // Ten continuation bytes followed by a terminator likewise.
        let mut cont = [0xffu8; 11];
        cont[10] = 0x00;
        assert!(Reader::new(&cont).uleb().is_err());
        // A ninth-byte terminator may use all seven bits (shift 56).
        let mut nine = [0xffu8; 9];
        nine[8] = 0x7f;
        assert_eq!(Reader::new(&nine).uleb().unwrap(), u64::MAX >> 1);
    }

    #[test]
    fn hostile_string_length_fails_cleanly() {
        // A length-prefixed string claiming nearly u64::MAX bytes: `pos +
        // len` must not overflow, it must report truncation.
        let mut w = Writer::new();
        w.uleb(u64::MAX - 2);
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).str(), Err(DecodeError::UnexpectedEof));
        // Same hostile length buried in a module name position.
        let mut module = encode_module(&Module::new("m"));
        module.truncate(5); // keep magic + version, replace the name
        module.extend_from_slice(&bytes);
        assert!(decode_module(&module).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let m = sample_module();
        let mut bytes = encode_module(&m);
        assert!(decode_module(&bytes).is_ok());
        bytes.push(0);
        assert_eq!(decode_module(&bytes), Err(DecodeError::TrailingBytes));
        // Two concatenated modules must not silently decode as the first.
        let mut twice = encode_module(&m);
        twice.extend_from_slice(&encode_module(&m));
        assert_eq!(decode_module(&twice), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn encoded_size_matches_encoding_without_allocating() {
        let m = sample_module();
        assert_eq!(encoded_size(&m), encode_module(&m).len());
        let empty = Module::new("empty");
        assert_eq!(encoded_size(&empty), encode_module(&empty).len());
    }

    /// Deterministic xorshift64* PRNG — no external crates, stable seeds.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    #[test]
    fn corrupt_bytes_never_panic_or_alias() {
        let reference = sample_module();
        let bytes = encode_module(&reference);
        let mut rng = 0x05ee_ddac_2010_u64;
        for _ in 0..2_000 {
            let mut mutated = bytes.clone();
            // Flip 1–4 random bytes to random values.
            let flips = (xorshift(&mut rng) % 4 + 1) as usize;
            for _ in 0..flips {
                let idx = (xorshift(&mut rng) as usize) % mutated.len();
                mutated[idx] = xorshift(&mut rng) as u8;
            }
            if mutated == bytes {
                continue;
            }
            // The decoder must never panic; if the mutation happens to
            // still decode, the result must re-encode canonically (no two
            // distinct canonical encodings may alias one module).
            if let Ok(m) = decode_module(&mutated) {
                let reencoded = encode_module(&m);
                assert!(
                    decode_module(&reencoded).as_ref() == Ok(&m),
                    "mutated input decoded to a module that does not round-trip"
                );
            }
        }
        // Every strict prefix must fail; a decode consumes its input exactly.
        for cut in 0..bytes.len() {
            assert!(decode_module(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn annotations_survive_round_trip() {
        let m = sample_module();
        let decoded = decode_module(&encode_module(&m)).unwrap();
        assert_eq!(
            decoded.annotations.get_bool("splitc.offline.optimized"),
            Some(true)
        );
        assert_eq!(
            decoded
                .function("saxpy")
                .unwrap()
                .annotations
                .get_int("splitc.loop.trip_count_hint"),
            Some(4096)
        );
    }
}
