//! Convenience builder for constructing bytecode functions.
//!
//! Used by the front end's lowering phase, by the offline vectorizer when it
//! rewrites loops, and extensively by tests.

use crate::function::Function;
use crate::inst::{BinOp, BlockId, CmpOp, Immediate, Inst, ReduceOp, UnOp, VReg};
use crate::types::{ScalarType, Type};

/// An incremental builder around a [`Function`].
///
/// The builder tracks a *current block*; emission methods append to it and
/// return the destination register of the emitted instruction.
///
/// # Examples
///
/// Build `fn scale(p: ptr, a: f32) { *(f32*)p = a * *(f32*)p; }`:
///
/// ```
/// use splitc_vbc::{BinOp, FunctionBuilder, ScalarType, Type};
///
/// let mut b = FunctionBuilder::new(
///     "scale",
///     &[Type::Scalar(ScalarType::Ptr), Type::Scalar(ScalarType::F32)],
///     None,
/// );
/// let p = b.param(0);
/// let a = b.param(1);
/// let x = b.load(ScalarType::F32, p, 0);
/// let y = b.bin(BinOp::Mul, ScalarType::F32, a, x);
/// b.store(ScalarType::F32, p, 0, y);
/// b.ret(None);
/// let f = b.finish();
/// assert!(splitc_vbc::verify_function(&f).is_ok());
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    /// Start building a function with the given signature.
    pub fn new(name: &str, params: &[Type], ret: Option<Type>) -> Self {
        let func = Function::new(name, params, ret);
        let current = func.entry;
        FunctionBuilder { func, current }
    }

    /// Wrap an existing function for further editing, positioned at `block`.
    pub fn on(func: Function, block: BlockId) -> Self {
        FunctionBuilder {
            func,
            current: block,
        }
    }

    /// The register holding parameter `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> VReg {
        self.func.params[index].0
    }

    /// Allocate a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: impl Into<Type>) -> VReg {
        self.func.new_vreg(ty.into())
    }

    /// Create a new, empty block (does not change the current block).
    pub fn new_block(&mut self) -> BlockId {
        self.func.new_block()
    }

    /// Switch emission to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Append a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        let cur = self.current;
        self.func.block_mut(cur).insts.push(inst);
    }

    /// Emit an integer constant of type `ty`.
    pub fn const_int(&mut self, ty: ScalarType, value: i64) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ty));
        self.push(Inst::Const {
            dst,
            ty,
            imm: Immediate::Int(value),
        });
        dst
    }

    /// Emit a floating-point constant of type `ty`.
    ///
    /// An `f32`-typed constant is rounded to single precision (see
    /// [`ScalarType::canonicalize_float`]), so every consumer — interpreter,
    /// scalar JIT paths, SIMD lane splats — sees the same representable
    /// value.
    pub fn const_float(&mut self, ty: ScalarType, value: f64) -> VReg {
        let value = ty.canonicalize_float(value);
        let dst = self.new_vreg(Type::Scalar(ty));
        self.push(Inst::Const {
            dst,
            ty,
            imm: Immediate::Float(value),
        });
        dst
    }

    /// Emit a register copy.
    pub fn mov(&mut self, ty: ScalarType, src: VReg) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ty));
        self.push(Inst::Move { dst, ty, src });
        dst
    }

    /// Emit `lhs <op> rhs`.
    pub fn bin(&mut self, op: BinOp, ty: ScalarType, lhs: VReg, rhs: VReg) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ty));
        self.push(Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// Emit `<op> src`.
    pub fn un(&mut self, op: UnOp, ty: ScalarType, src: VReg) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ty));
        self.push(Inst::Un { op, ty, dst, src });
        dst
    }

    /// Emit a comparison producing an `i32` truth value.
    pub fn cmp(&mut self, op: CmpOp, ty: ScalarType, lhs: VReg, rhs: VReg) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ScalarType::I32));
        self.push(Inst::Cmp {
            op,
            ty,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// Emit a select (`cond ? if_true : if_false`).
    pub fn select(&mut self, ty: ScalarType, cond: VReg, if_true: VReg, if_false: VReg) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ty));
        self.push(Inst::Select {
            ty,
            dst,
            cond,
            if_true,
            if_false,
        });
        dst
    }

    /// Emit a numeric conversion from `from` to `to`.
    pub fn cast(&mut self, from: ScalarType, to: ScalarType, src: VReg) -> VReg {
        let dst = self.new_vreg(Type::Scalar(to));
        self.push(Inst::Cast { dst, to, src, from });
        dst
    }

    /// Emit a scalar load.
    pub fn load(&mut self, ty: ScalarType, addr: VReg, offset: i64) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ty));
        self.push(Inst::Load {
            dst,
            ty,
            addr,
            offset,
        });
        dst
    }

    /// Emit a scalar store.
    pub fn store(&mut self, ty: ScalarType, addr: VReg, offset: i64, value: VReg) {
        self.push(Inst::Store {
            ty,
            addr,
            offset,
            value,
        });
    }

    /// Emit a direct call.
    pub fn call(&mut self, callee: &str, args: &[VReg], ret: Option<Type>) -> Option<VReg> {
        let dst = ret.map(|ty| self.new_vreg(ty));
        self.push(Inst::Call {
            dst,
            callee: callee.to_owned(),
            args: args.to_vec(),
        });
        dst
    }

    /// Emit the portable lane-count builtin for element type `elem` (`i64` result).
    pub fn vec_width(&mut self, elem: ScalarType) -> VReg {
        let dst = self.new_vreg(Type::Scalar(ScalarType::I64));
        self.push(Inst::VecWidth { dst, elem });
        dst
    }

    /// Emit a vector splat of a scalar.
    pub fn vec_splat(&mut self, elem: ScalarType, src: VReg) -> VReg {
        let dst = self.new_vreg(Type::Vector(elem));
        self.push(Inst::VecSplat { dst, elem, src });
        dst
    }

    /// Emit a contiguous vector load.
    pub fn vec_load(&mut self, elem: ScalarType, addr: VReg, offset: i64) -> VReg {
        let dst = self.new_vreg(Type::Vector(elem));
        self.push(Inst::VecLoad {
            dst,
            elem,
            addr,
            offset,
        });
        dst
    }

    /// Emit a contiguous vector store.
    pub fn vec_store(&mut self, elem: ScalarType, addr: VReg, offset: i64, value: VReg) {
        self.push(Inst::VecStore {
            elem,
            addr,
            offset,
            value,
        });
    }

    /// Emit an element-wise vector binary operation.
    pub fn vec_bin(&mut self, op: BinOp, elem: ScalarType, lhs: VReg, rhs: VReg) -> VReg {
        let dst = self.new_vreg(Type::Vector(elem));
        self.push(Inst::VecBin {
            op,
            elem,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// Emit a horizontal reduction of a vector into a scalar.
    pub fn vec_reduce(&mut self, op: ReduceOp, elem: ScalarType, src: VReg) -> VReg {
        let dst = self.new_vreg(Type::Scalar(elem));
        self.push(Inst::VecReduce { op, elem, dst, src });
        dst
    }

    /// Terminate the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.push(Inst::Jump { target });
    }

    /// Terminate the current block with a conditional branch.
    pub fn branch(&mut self, cond: VReg, then_bb: BlockId, else_bb: BlockId) {
        self.push(Inst::Branch {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, value: Option<VReg>) {
        self.push(Inst::Ret { value });
    }

    /// Shared access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Finish building and take ownership of the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn build_loop_with_builder() {
        // fn sum(n: i32) -> i32 { s = 0; for i in 0..n { s += i; } return s; }
        let mut b = FunctionBuilder::new(
            "sum",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::I32)),
        );
        let n = b.param(0);
        let s0 = b.const_int(ScalarType::I32, 0);
        let i0 = b.const_int(ScalarType::I32, 0);
        let s = b.new_vreg(ScalarType::I32);
        let i = b.new_vreg(ScalarType::I32);
        b.push(Inst::Move {
            dst: s,
            ty: ScalarType::I32,
            src: s0,
        });
        b.push(Inst::Move {
            dst: i,
            ty: ScalarType::I32,
            src: i0,
        });
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(header);

        b.switch_to(header);
        let c = b.cmp(CmpOp::Lt, ScalarType::I32, i, n);
        b.branch(c, body, exit);

        b.switch_to(body);
        let s2 = b.bin(BinOp::Add, ScalarType::I32, s, i);
        b.push(Inst::Move {
            dst: s,
            ty: ScalarType::I32,
            src: s2,
        });
        let one = b.const_int(ScalarType::I32, 1);
        let i2 = b.bin(BinOp::Add, ScalarType::I32, i, one);
        b.push(Inst::Move {
            dst: i,
            ty: ScalarType::I32,
            src: i2,
        });
        b.jump(header);

        b.switch_to(exit);
        b.ret(Some(s));

        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        verify_function(&f).expect("builder output verifies");
    }

    #[test]
    fn vector_helpers_produce_vector_typed_registers() {
        let mut b = FunctionBuilder::new("v", &[Type::Scalar(ScalarType::Ptr)], None);
        let p = b.param(0);
        let vl = b.vec_width(ScalarType::F32);
        assert_eq!(b.func().vreg_type(vl), Type::Scalar(ScalarType::I64));
        let v = b.vec_load(ScalarType::F32, p, 0);
        assert_eq!(b.func().vreg_type(v), Type::Vector(ScalarType::F32));
        let w = b.vec_bin(BinOp::Add, ScalarType::F32, v, v);
        let r = b.vec_reduce(ReduceOp::Add, ScalarType::F32, w);
        assert_eq!(b.func().vreg_type(r), Type::Scalar(ScalarType::F32));
        b.vec_store(ScalarType::F32, p, 0, w);
        b.ret(None);
        verify_function(&b.finish()).expect("vector builder output verifies");
    }

    #[test]
    fn call_and_cast_helpers() {
        let mut b = FunctionBuilder::new(
            "caller",
            &[Type::Scalar(ScalarType::I32)],
            Some(Type::Scalar(ScalarType::F32)),
        );
        let x = b.param(0);
        let f = b.cast(ScalarType::I32, ScalarType::F32, x);
        let r = b
            .call("callee", &[f], Some(Type::Scalar(ScalarType::F32)))
            .expect("call returns a value");
        b.ret(Some(r));
        let func = b.finish();
        assert_eq!(func.num_insts(), 3);
    }
}
