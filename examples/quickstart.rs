//! Quickstart: write a kernel once, run it on very different machines.
//!
//! This is the shortest end-to-end tour of the split-compilation pipeline:
//!
//! 1. compile a mini-C kernel *offline* to portable bytecode and let the
//!    offline optimizer vectorize and annotate it;
//! 2. deploy that same bytecode into a cached [`ExecutionEngine`] and let it
//!    JIT-compile *online* — exactly once per machine — for an x86 with SSE
//!    and for a scalar UltraSparc-class machine;
//! 3. run both on their cycle simulators and compare.
//!
//! Run with: `cargo run --example quickstart`

use splitc::splitc_jit::JitOptions;
use splitc::splitc_opt::OptOptions;
use splitc::splitc_targets::{MachineValue, TargetDesc};
use splitc::{offline_compile, ExecutionEngine, Workspace};

const KERNEL: &str = r#"
// Scale-and-accumulate, the BLAS "saxpy" kernel.
fn saxpy(n: i32, a: f32, x: *f32, y: *f32) {
    for (let i: i32 = 0; i < n; i = i + 1) {
        y[i] = a * x[i] + y[i];
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Offline step (developer workstation) -------------------------------
    let (module, report) = offline_compile(KERNEL, "quickstart", &OptOptions::full())?;
    println!("offline step:");
    println!("  vectorized loops : {}", report.total_vectorized());
    println!("  offline work     : {} units", report.offline_work);
    println!(
        "  bytecode size    : {} bytes",
        splitc::splitc_vbc::encoded_size(&module)
    );
    println!();

    // --- Online step (each device) ------------------------------------------
    // Deploy once; the engine compiles each distinct machine exactly once and
    // serves every further run of the kernel from its code cache.
    let engine = ExecutionEngine::new(module);
    let n = 4096usize;
    for target in [TargetDesc::x86_sse(), TargetDesc::ultrasparc()] {
        let mut ws = Workspace::new(1 << 20);
        let x = ws.alloc(4 * n as u64);
        let y = ws.alloc(4 * n as u64);
        ws.write_f32s(x, &(0..n).map(|i| i as f32 * 0.25).collect::<Vec<_>>());
        ws.write_f32s(y, &vec![1.0; n]);

        let run = engine.run(
            &target,
            &JitOptions::split(),
            "saxpy",
            &[
                MachineValue::Int(n as i64),
                MachineValue::Float(2.0),
                MachineValue::Int(x as i64),
                MachineValue::Int(y as i64),
            ],
            ws.bytes_mut(),
        )?;

        println!("{target}:");
        println!("  online (JIT) work : {} units", run.jit.total_work());
        println!(
            "  vector builtins   : {}",
            if run.jit.used_simd {
                "mapped to SIMD"
            } else {
                "scalarized"
            }
        );
        println!("  simulated cycles  : {}", run.stats.cycles);
        println!("  y[1] = {}", ws.read_f32s(y, 2)[1]);
        println!();
    }
    println!(
        "engine cache: {} online compilations, {} cache hits",
        engine.stats().compiles,
        engine.stats().hits
    );
    Ok(())
}
