//! Parallel sweeps: fan a kernel × target × repeat matrix across cores.
//!
//! One deployment, many workers: the engine's sharded, in-flight-deduplicated
//! code cache guarantees each (target, JIT-options) pair compiles exactly
//! once even when workers race on cold keys, and the sweep layer returns the
//! cells in deterministic order — a parallel sweep is bit-identical to a
//! sequential one. The example also bounds the cache with an LRU limit to
//! show the eviction counters long-running deployments watch.
//!
//! Run with: `cargo run --example parallel_sweep`

use splitc::splitc_targets::TargetDesc;
use splitc::splitc_workloads::table1_kernels;
use splitc::sweep::{sweep_kernels, SweepConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernels = table1_kernels();
    let targets = TargetDesc::presets();

    // Sequential reference sweep, then the same matrix over 4 workers.
    let sequential = sweep_kernels(&kernels, &targets, &SweepConfig::new(512).with_repeats(3))?;
    let parallel = sweep_kernels(
        &kernels,
        &targets,
        &SweepConfig::new(512).with_repeats(3).with_jobs(4),
    )?;

    assert_eq!(
        sequential.checksums(),
        parallel.checksums(),
        "parallelism never changes results"
    );
    println!(
        "{} cells ({} kernels x {} targets x 3 repeats), 4 workers",
        parallel.cells.len(),
        kernels.len(),
        targets.len()
    );
    println!(
        "online compilations: {} (one per target), cache hits: {}",
        parallel.cache.compiles, parallel.cache.hits
    );

    // Bound the cache below the number of targets: the sweep still succeeds,
    // it just recompiles evicted entries (bit-identically) and counts it.
    let engine = splitc::ExecutionEngine::new({
        let mut m = splitc::splitc_workloads::module_for(&kernels, "bounded")?;
        splitc::splitc_opt::optimize_module(&mut m, &splitc::splitc_opt::OptOptions::full());
        m
    });
    engine.set_cache_capacity(2);
    let bounded = splitc::sweep::sweep_engine(
        &engine,
        &kernels,
        &targets,
        &SweepConfig::new(512).with_jobs(4),
    )?;
    let first_repeats: Vec<u64> = sequential
        .cells
        .iter()
        .filter(|c| c.repeat == 0)
        .map(|c| c.checksum)
        .collect();
    assert_eq!(
        bounded.checksums(),
        first_repeats,
        "eviction churn never changes results"
    );
    println!(
        "with a 2-entry LRU bound: {} compiles, {} evictions, {} programs resident",
        bounded.cache.compiles,
        bounded.cache.evictions,
        engine.compiled_variants()
    );
    Ok(())
}
