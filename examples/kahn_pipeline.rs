//! Kahn process networks (Section 4): portable, deterministic concurrency.
//!
//! Builds an image-processing pipeline (brighten -> threshold -> copy) from
//! the kernel catalogue, measures each stage's cost per core of a Cell-style
//! blade by JIT-compiling and simulating it, and then compares three mappings
//! of the network onto the cores. Kahn semantics make the outcome of the
//! computation independent of the mapping; only the makespan changes.
//!
//! Run with: `cargo run --release --example kahn_pipeline`

use splitc::experiments::kpn;
use splitc::splitc_runtime::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for platform in [Platform::cell_blade(2), Platform::phone()] {
        let result = kpn::run(&platform, 4096, 64)?;
        println!("{}", result.render());
    }
    println!("Determinism check: every mapping fired every stage exactly once per frame.");
    Ok(())
}
