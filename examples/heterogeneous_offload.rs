//! The Cell scenario of Section 3: one bytecode, host or accelerator.
//!
//! The same vectorized kernel is deployed to a Cell-style blade. The runtime
//! can run it on the PowerPC host core (PPE) or offload it to a SIMD
//! accelerator (SPU), paying DMA transfers both ways. The example sweeps the
//! problem size to expose the offload-profitability crossover, and also shows
//! the annotation-guided core chooser picking a sensible core on a phone SoC.
//!
//! Run with: `cargo run --release --example heterogeneous_offload`

use splitc::experiments::hetero;
use splitc::splitc_opt::{optimize_module, OptOptions};
use splitc::splitc_runtime::{choose_core, Platform};
use splitc::splitc_workloads::{kernel, module_for};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The size sweep: where does offloading to the SPU start to pay off?
    let result = hetero::run("saxpy_f32", &[256, 1024, 4096, 16384, 65536])?;
    println!("{}", result.render());

    // Annotation-guided mapping on a phone SoC (ARM + DSP).
    let k = kernel("saxpy_f32").expect("catalogue kernel");
    let mut module = module_for(&[k], "phone-demo")?;
    optimize_module(&mut module, &OptOptions::full());
    let traits = module
        .function("saxpy_f32")
        .expect("kernel exists")
        .annotations
        .kernel_traits()
        .expect("offline step attached kernel traits");
    let phone = Platform::phone();
    let core = choose_core(&traits, &phone);
    println!(
        "kernel traits: uses_fp={} uses_vector={} -> the runtime maps saxpy to the `{}` core of the {} platform",
        traits.uses_fp, traits.uses_vector, core.name, phone.name
    );
    Ok(())
}
