//! Reproduce the paper's Table 1: split automatic vectorization.
//!
//! Compiles the six kernels of the paper once to portable bytecode (scalar and
//! vectorized variants) and measures both on the simulated x86/SSE,
//! UltraSparc and PowerPC machines. The "relative" columns are the paper's
//! speedups: large on x86 (the JIT recognizes the builtins and emits SIMD),
//! around 1 on the scalar-only machines (the JIT scalarizes).
//!
//! Run with: `cargo run --release --example table1_vectorization [n]`

use splitc::experiments::table1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let table = table1::run(n)?;
    println!("{}", table.render());

    println!("paper reference points (real hardware, Table 1):");
    println!("  x86        : 1.6x - 15.6x  (largest for max u8)");
    println!("  UltraSparc : 0.78x - 1.5x");
    println!("  PowerPC    : 1.1x - 1.5x");
    Ok(())
}
