//! Deployment-format tour: verify, ship, decode, run anywhere.
//!
//! Shows the full deployment path the paper argues for: the offline compiler
//! produces one compact, annotated bytecode module; the module is encoded,
//! "shipped", decoded and verified on the device; the device JIT then
//! produces native code for whatever core it has. The example prints the
//! size of the portable module against the native code of every preset
//! target (the Section 2.1 compactness argument).
//!
//! Run with: `cargo run --release --example portable_deployment`

use splitc::experiments::codesize;
use splitc::splitc_opt::{optimize_module, OptOptions};
use splitc::splitc_vbc::{decode_module, encode_module, verify_module};
use splitc::splitc_workloads::full_module;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: build and annotate the whole kernel suite.
    let mut module = full_module("suite")?;
    optimize_module(&mut module, &OptOptions::full());

    // Ship it: encode, transfer, decode, verify on the device.
    let wire = encode_module(&module);
    let received = decode_module(&wire)?;
    verify_module(&received)?;
    println!(
        "shipped {} kernels as {} bytes of portable bytecode; verified on the device\n",
        received.functions().len(),
        wire.len()
    );

    // Compare against shipping native code for every supported machine.
    let sizes = codesize::run()?;
    println!("{}", sizes.render());
    Ok(())
}
