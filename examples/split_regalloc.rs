//! Split register allocation (Section 4): portable spill annotations.
//!
//! The offline compiler ranks values by how much they deserve a register and
//! ships that ranking as a compact bytecode annotation. On the device, the
//! JIT assigns registers in linear time using the ranking. This example
//! compares the dynamic spill traffic against a greedy online allocator and an
//! online allocator that redoes the analysis at JIT time — the paper reports
//! up to 40 % fewer spills for the split approach.
//!
//! Run with: `cargo run --release --example split_regalloc [n]`

use splitc::experiments::regalloc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let result = regalloc::run(n)?;
    println!("{}", result.render());
    println!(
        "paper reference point: split register allocation saves up to 40% of the spills\n\
         with a linear-time online step (Diouf et al., cited in Section 4)."
    );
    Ok(())
}
