//! Differential testing: the reference interpreter and every simulated target
//! must agree on the results of every catalogue kernel, whatever compilation
//! strategy produced the machine code.
//!
//! This is the keystone correctness test of the reproduction: the bytecode
//! semantics (interpreter), the offline optimizer (vectorization, annotations)
//! and the online compiler (SIMD mapping, scalarization, all three register
//! allocators) all have to meet in the same numbers.

use splitc::{checksum, prepare, run_on_target, Workspace};
use splitc_jit::{JitOptions, RegAllocMode};
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::{MachineValue, TargetDesc};
use splitc_vbc::{Interpreter, Memory, Value};
use splitc_workloads::{all_kernels, module_for, Kernel};

const N: usize = 173; // deliberately not a multiple of any lane count

fn interpreter_checksum(module: &splitc_vbc::Module, kernel: &Kernel) -> u64 {
    let mut ws = Workspace::new(1 << 16);
    let prepared = prepare(kernel.name, N, 99, &mut ws);
    // Mirror the workspace into the interpreter's memory.
    let mut mem = Memory::new(ws.bytes().len());
    mem.bytes_mut().copy_from_slice(ws.bytes());
    let args: Vec<Value> = prepared
        .args
        .iter()
        .map(|a| match a {
            MachineValue::Int(v) => Value::Int(*v),
            MachineValue::Float(v) => Value::Float(*v),
        })
        .collect();
    let mut interp = Interpreter::new(module);
    let result = interp
        .run(kernel.name, &args, &mut mem)
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", kernel.name));
    // Copy the interpreter's memory back into a workspace for the checksum.
    let mut out_ws = Workspace::new(ws.bytes().len());
    out_ws.bytes_mut().copy_from_slice(mem.bytes());
    let result = result.map(|v| match v {
        Value::Int(i) => MachineValue::Int(i),
        Value::Float(f) => MachineValue::Float(f),
        Value::Vector(_) => panic!("kernels do not return vectors"),
    });
    checksum(result, &prepared, &out_ws)
}

fn target_checksum(
    module: &splitc_vbc::Module,
    kernel: &Kernel,
    target: &TargetDesc,
    jit: &JitOptions,
) -> u64 {
    let mut ws = Workspace::new(1 << 16);
    let prepared = prepare(kernel.name, N, 99, &mut ws);
    let run = run_on_target(
        module,
        target,
        jit,
        kernel.name,
        &prepared.args,
        ws.bytes_mut(),
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, target.name));
    checksum(run.result, &prepared, &ws)
}

#[test]
fn every_kernel_agrees_across_interpreter_and_all_targets() {
    for kernel in all_kernels() {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        let reference = interpreter_checksum(&module, &kernel);
        for target in TargetDesc::presets() {
            let sum = target_checksum(&module, &kernel, &target, &JitOptions::split());
            assert_eq!(
                sum, reference,
                "{} on {} disagrees with the reference interpreter",
                kernel.name, target.name
            );
        }
    }
}

#[test]
fn register_allocation_strategy_never_changes_results() {
    let modes = [
        RegAllocMode::SplitAnnotations,
        RegAllocMode::OnlineGreedy,
        RegAllocMode::OnlineAnalyze,
    ];
    // Register-starved targets stress the allocator the most.
    let targets = [TargetDesc::x86_sse(), TargetDesc::dsp()];
    for kernel in all_kernels() {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        let reference = interpreter_checksum(&module, &kernel);
        for target in &targets {
            for mode in modes {
                let jit = JitOptions {
                    regalloc: mode,
                    allow_simd: true,
                };
                let sum = target_checksum(&module, &kernel, target, &jit);
                assert_eq!(
                    sum, reference,
                    "{} on {} with {mode:?} disagrees with the reference",
                    kernel.name, target.name
                );
            }
        }
    }
}

#[test]
fn offline_optimization_level_never_changes_results() {
    let levels = [
        OptOptions::none(),
        OptOptions::scalar_only(),
        OptOptions::full(),
    ];
    let target = TargetDesc::arm_neon();
    // Floating-point *reduction* kernels are excluded from this particular
    // comparison: vectorizing a float sum reassociates the additions, so the
    // scalar and vectorized variants agree only up to rounding (they are still
    // checked against each other, per variant, by the other tests here).
    let reassociated = ["dot_f32", "hotcold_f32"];
    for kernel in all_kernels() {
        if reassociated.contains(&kernel.name) {
            continue;
        }
        let mut reference = None;
        for opts in levels {
            let mut module =
                module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
            optimize_module(&mut module, &opts);
            let sum = target_checksum(&module, &kernel, &target, &JitOptions::split());
            match reference {
                None => reference = Some(sum),
                Some(r) => assert_eq!(
                    sum, r,
                    "{}: optimization level {opts:?} changed the result",
                    kernel.name
                ),
            }
        }
    }
}

#[test]
fn disabling_simd_never_changes_results() {
    // A JIT that ignores the vector builtins (scalarization on a SIMD-capable
    // machine) must still compute the same thing.
    for kernel in all_kernels().into_iter().filter(|k| k.vectorizable) {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        let target = TargetDesc::x86_sse();
        let with_simd = target_checksum(&module, &kernel, &target, &JitOptions::split());
        let without = target_checksum(
            &module,
            &kernel,
            &target,
            &JitOptions {
                regalloc: RegAllocMode::SplitAnnotations,
                allow_simd: false,
            },
        );
        assert_eq!(
            with_simd, without,
            "{}: scalarization changed the result",
            kernel.name
        );
    }
}
