//! Differential testing: the reference interpreter and every simulated target
//! must agree on the results of every catalogue kernel, whatever compilation
//! strategy produced the machine code.
//!
//! This is the keystone correctness test of the reproduction: the bytecode
//! semantics (interpreter), the offline optimizer (vectorization, annotations)
//! and the online compiler (SIMD mapping, scalarization, all three register
//! allocators) all have to meet in the same numbers.

use splitc::{checksum, prepare, run_on_target, Workspace};
use splitc_jit::{JitOptions, RegAllocMode};
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::{MachineValue, TargetDesc};
use splitc_vbc::{Interpreter, Memory, Value, DEFAULT_VECTOR_WIDTH_BYTES};
use splitc_workloads::{all_kernels, module_for, Kernel};

const N: usize = 173; // deliberately not a multiple of any lane count

/// Vector width (bytes) the online compiler resolves `vec.width` to for this
/// target/JIT combination: the target's own SIMD width when the JIT maps the
/// builtins onto it, the portable default when it scalarizes. The reference
/// interpreter must run at the *same* width — a float reduction folds its
/// partial sums per lane, so a 64-byte GPU vector (16 f32 lanes) legitimately
/// reassociates differently from the 16-byte default.
fn effective_width(target: &TargetDesc, jit: &JitOptions) -> u64 {
    if jit.allow_simd && target.has_simd() {
        target.vector_bytes()
    } else {
        DEFAULT_VECTOR_WIDTH_BYTES
    }
}

/// `true` if offline vectorization turned any loop of `module` into a
/// floating-point reduction — exactly the shapes whose results legitimately
/// depend on the lane count (the partial sums fold per lane). Derived from
/// the bytecode so new kernels can never silently miss the skip lists below.
fn has_float_reduction(module: &splitc_vbc::Module) -> bool {
    module.functions().iter().any(|f| {
        f.blocks.iter().any(|b| {
            b.insts
                .iter()
                .any(|i| matches!(i, splitc_vbc::Inst::VecReduce { elem, .. } if elem.is_float()))
        })
    })
}

fn interpreter_checksum(module: &splitc_vbc::Module, kernel: &Kernel, vector_width: u64) -> u64 {
    let mut ws = Workspace::new(1 << 16);
    let prepared = prepare(kernel.name, N, 99, &mut ws);
    // Mirror the workspace into the interpreter's memory.
    let mut mem = Memory::new(ws.bytes().len());
    mem.bytes_mut().copy_from_slice(ws.bytes());
    let args: Vec<Value> = prepared
        .args
        .iter()
        .map(|a| match a {
            MachineValue::Int(v) => Value::Int(*v),
            MachineValue::Float(v) => Value::Float(*v),
        })
        .collect();
    let mut interp = Interpreter::new(module).with_vector_width(vector_width);
    let result = interp
        .run(kernel.name, &args, &mut mem)
        .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", kernel.name));
    // Copy the interpreter's memory back into a workspace for the checksum.
    let mut out_ws = Workspace::new(ws.bytes().len());
    out_ws.bytes_mut().copy_from_slice(mem.bytes());
    let result = result.map(|v| match v {
        Value::Int(i) => MachineValue::Int(i),
        Value::Float(f) => MachineValue::Float(f),
        Value::Vector(_) => panic!("kernels do not return vectors"),
    });
    checksum(result, &prepared, &out_ws)
}

fn target_checksum(
    module: &splitc_vbc::Module,
    kernel: &Kernel,
    target: &TargetDesc,
    jit: &JitOptions,
) -> u64 {
    let mut ws = Workspace::new(1 << 16);
    let prepared = prepare(kernel.name, N, 99, &mut ws);
    let run = run_on_target(
        module,
        target,
        jit,
        kernel.name,
        &prepared.args,
        ws.bytes_mut(),
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, target.name));
    checksum(run.result, &prepared, &ws)
}

#[test]
fn every_kernel_agrees_across_interpreter_and_all_targets() {
    let jit = JitOptions::split();
    for kernel in all_kernels() {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        // One interpreter reference per distinct lane width in the catalogue
        // (16-byte SIMD units and the scalarized default share one; the
        // 64-byte GPU gets its own).
        let mut references: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for target in TargetDesc::presets() {
            let width = effective_width(&target, &jit);
            let reference = *references
                .entry(width)
                .or_insert_with(|| interpreter_checksum(&module, &kernel, width));
            let sum = target_checksum(&module, &kernel, &target, &jit);
            assert_eq!(
                sum, reference,
                "{} on {} disagrees with the reference interpreter at {width}-byte vectors",
                kernel.name, target.name
            );
        }
    }
}

#[test]
fn register_allocation_strategy_never_changes_results() {
    let modes = [
        RegAllocMode::SplitAnnotations,
        RegAllocMode::OnlineGreedy,
        RegAllocMode::OnlineAnalyze,
    ];
    // Register-starved targets stress the allocator the most; the RISC-V
    // core covers the opposite corner (a large uniform file where almost
    // nothing spills) and the GPU covers 64-byte vector registers.
    let targets = [
        TargetDesc::x86_sse(),
        TargetDesc::dsp(),
        TargetDesc::riscv_rv64(),
        TargetDesc::gpu_wide(),
    ];
    for kernel in all_kernels() {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        let mut references: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for target in &targets {
            for mode in modes {
                let jit = JitOptions {
                    regalloc: mode,
                    allow_simd: true,
                    fuse: true,
                };
                let width = effective_width(target, &jit);
                let reference = *references
                    .entry(width)
                    .or_insert_with(|| interpreter_checksum(&module, &kernel, width));
                let sum = target_checksum(&module, &kernel, target, &jit);
                assert_eq!(
                    sum, reference,
                    "{} on {} with {mode:?} disagrees with the reference",
                    kernel.name, target.name
                );
            }
        }
    }
}

#[test]
fn offline_optimization_level_never_changes_results() {
    let levels = [
        OptOptions::none(),
        OptOptions::scalar_only(),
        OptOptions::full(),
    ];
    let target = TargetDesc::arm_neon();
    // Floating-point *reduction* kernels are excluded from this particular
    // comparison: vectorizing a float sum reassociates the additions, so the
    // scalar and vectorized variants agree only up to rounding (they are still
    // checked against each other, per variant, by the other tests here).
    for kernel in all_kernels() {
        let mut probe =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut probe, &OptOptions::full());
        if has_float_reduction(&probe) {
            continue;
        }
        let mut reference = None;
        for opts in levels {
            let mut module =
                module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
            optimize_module(&mut module, &opts);
            let sum = target_checksum(&module, &kernel, &target, &JitOptions::split());
            match reference {
                None => reference = Some(sum),
                Some(r) => assert_eq!(
                    sum, r,
                    "{}: optimization level {opts:?} changed the result",
                    kernel.name
                ),
            }
        }
    }
}

#[test]
fn disabling_simd_never_changes_results() {
    // A JIT that ignores the vector builtins (scalarization on a SIMD-capable
    // machine) must still compute the same thing, on every SIMD preset in the
    // catalogue. Float *reductions* are only required to match when the SIMD
    // width equals the scalarizer's default width: at a different lane count
    // (the 64-byte GPU) the partial sums legitimately reassociate, so there
    // each path is instead pinned against its own width-matched interpreter.
    for kernel in all_kernels().into_iter().filter(|k| k.vectorizable) {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        let reassociates = has_float_reduction(&module);
        for target in TargetDesc::presets()
            .into_iter()
            .filter(TargetDesc::has_simd)
        {
            if target.vector_bytes() != DEFAULT_VECTOR_WIDTH_BYTES && reassociates {
                continue;
            }
            let with_simd = target_checksum(&module, &kernel, &target, &JitOptions::split());
            let without = target_checksum(
                &module,
                &kernel,
                &target,
                &JitOptions {
                    regalloc: RegAllocMode::SplitAnnotations,
                    allow_simd: false,
                    fuse: true,
                },
            );
            assert_eq!(
                with_simd, without,
                "{} on {}: scalarization changed the result",
                kernel.name, target.name
            );
        }
    }
}
