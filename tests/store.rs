//! Integration suite for the persistent compiled-artifact store: the split
//! of the split — compilation paid once per *store directory*, not once per
//! process.
//!
//! The contract under test: a warm start (fresh engine, populated store)
//! serves every `(module, target, options)` key from disk with **zero**
//! online compilations, and every store-loaded execution is bit-identical —
//! result, memory image, simulator stats, replayed `JitStats` — to a fresh
//! single-threaded [`run_on_target`] reference. Staleness and corruption
//! are never errors: a version-skewed or bit-flipped entry is rejected,
//! recompiled, and overwritten in place, so the store self-heals.

use splitc::{checksum_bytes, prepare, run_on_target, ArtifactStore, ExecutionEngine, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::TargetDesc;
use splitc_vbc::Module;
use splitc_workloads::{kernel, module_for, Kernel};
use std::sync::{Arc, Barrier};

/// Elements per kernel invocation — small enough to keep the 9-target
/// matrix fast, large enough to exercise the vector lanes.
const N: usize = 64;

/// The kernels the suite drives through the store (a vectorizable float
/// kernel and an integer reduction, so both SIMD and scalar artifact shapes
/// round-trip through disk).
fn suite_kernels() -> Vec<Kernel> {
    vec![
        kernel("saxpy_f32").expect("catalogue kernel"),
        kernel("sum_u8").expect("catalogue kernel"),
    ]
}

/// Compile the suite kernels into one optimized module.
fn offline() -> Module {
    let mut module = module_for(&suite_kernels(), "store-suite").expect("catalogue compiles");
    optimize_module(&mut module, &OptOptions::full());
    module
}

/// A per-test store under the system temp dir, cleared on open.
fn temp_store(name: &str) -> Arc<ArtifactStore> {
    let dir =
        std::env::temp_dir().join(format!("splitc-store-suite-{}-{name}", std::process::id()));
    let store = ArtifactStore::open(dir).expect("temp store opens");
    store.clear();
    Arc::new(store)
}

/// Find every `.svba` entry file in a store directory.
fn entry_files(store: &ArtifactStore) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(store.dir())
        .expect("store dir readable")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "svba"))
        .collect();
    files.sort();
    files
}

/// Cold pass writes, warm pass reads: across the full 9-target preset
/// catalogue, a fresh engine on a populated store compiles nothing, hits
/// the disk once per key, and reproduces the single-threaded
/// [`run_on_target`] reference bit for bit — result, memory image,
/// checksum, simulator stats, and the replayed `JitStats`.
#[test]
fn warm_start_is_bit_identical_to_fresh_compilation_on_every_target() {
    let store = temp_store("bit-identity");
    let module = offline();
    let options = JitOptions::split();
    let targets = TargetDesc::presets();
    let kernels = suite_kernels();
    let keys = targets.len();

    let cold = ExecutionEngine::new(module.clone()).with_store(Arc::clone(&store));
    let warm = ExecutionEngine::new(module.clone()).with_store(Arc::clone(&store));
    for (engine, pass) in [(&cold, "cold"), (&warm, "warm")] {
        for target in &targets {
            for k in &kernels {
                // The reference: a fresh, store-free, cache-free compile.
                let mut ws = Workspace::sized_for(N);
                let inputs = prepare(k.name, N, 0xdac, &mut ws);
                let mut reference_mem = ws.into_bytes();
                let mut mem = reference_mem.clone();
                let reference = run_on_target(
                    &module,
                    target,
                    &options,
                    k.name,
                    &inputs.args,
                    &mut reference_mem,
                )
                .expect("reference run succeeds");

                let run = engine
                    .run(target, &options, k.name, &inputs.args, &mut mem)
                    .expect("stored run succeeds");
                assert_eq!(
                    run.result, reference.result,
                    "{pass} {} on {}: result",
                    k.name, target.name
                );
                assert_eq!(
                    mem, reference_mem,
                    "{pass} {} on {}: memory image",
                    k.name, target.name
                );
                assert_eq!(
                    checksum_bytes(run.result, &inputs, &mem),
                    checksum_bytes(reference.result, &inputs, &reference_mem),
                    "{pass} {} on {}: checksum",
                    k.name,
                    target.name
                );
                assert_eq!(
                    run.stats, reference.stats,
                    "{pass} {} on {}: simulator stats",
                    k.name, target.name
                );
                assert_eq!(
                    run.jit, reference.jit,
                    "{pass} {} on {}: JitStats must replay from disk exactly",
                    k.name, target.name
                );
            }
        }
    }

    let cold_stats = cold.stats();
    assert_eq!(
        cold_stats.compiles, keys as u64,
        "cold pass compiles once per target"
    );
    assert_eq!(cold_stats.disk_misses, keys as u64);
    assert_eq!(cold_stats.disk_hits, 0);
    assert_eq!(
        store.len(),
        keys,
        "one entry per (module, target, options) key"
    );

    let warm_stats = warm.stats();
    assert_eq!(warm_stats.compiles, 0, "warm start never compiles");
    assert_eq!(warm_stats.disk_hits, keys as u64, "one disk hit per key");
    assert_eq!(warm_stats.disk_misses, 0);
    assert_eq!(warm_stats.disk_rejects, 0);
    store.clear();
}

/// A store written by a different (older or newer) wire-format version must
/// never be trusted: flipping the embedded vbc `VERSION` byte makes every
/// entry a reject, the engine falls back to a fresh compile with identical
/// results, and the overwrite heals the entry for the next process.
#[test]
fn stale_version_entries_fall_back_and_are_overwritten() {
    let store = temp_store("stale-version");
    let module = offline();
    let options = JitOptions::split();
    let target = TargetDesc::x86_sse();

    let mut ws = Workspace::sized_for(N);
    let inputs = prepare("saxpy_f32", N, 7, &mut ws);
    let base_mem = ws.into_bytes();

    let cold = ExecutionEngine::new(module.clone()).with_store(Arc::clone(&store));
    let mut cold_mem = base_mem.clone();
    let reference = cold
        .run(&target, &options, "saxpy_f32", &inputs.args, &mut cold_mem)
        .expect("cold run succeeds");

    // Skew the vbc version byte (offset 5: magic is 4 bytes, store format
    // version 1 byte) of every entry — the payload checksum still matches,
    // so only the version rung of the validation ladder can catch this.
    for entry in entry_files(&store) {
        let mut bytes = std::fs::read(&entry).expect("entry readable");
        bytes[5] ^= 0x55;
        std::fs::write(&entry, &bytes).expect("entry writable");
    }

    let engine = ExecutionEngine::new(module.clone()).with_store(Arc::clone(&store));
    let mut mem = base_mem.clone();
    let run = engine
        .run(&target, &options, "saxpy_f32", &inputs.args, &mut mem)
        .expect("version skew must fall back, not fail");
    assert_eq!(run.result, reference.result);
    assert_eq!(mem, cold_mem, "fallback recompilation is bit-identical");
    let stats = engine.stats();
    assert_eq!(stats.disk_rejects, 1, "the skewed entry is a reject");
    assert_eq!(stats.compiles, 1, "rejects recompile");
    assert_eq!(stats.disk_hits, 0);

    // The reject path overwrote the entry with a current-version one.
    let healed = ExecutionEngine::new(module).with_store(Arc::clone(&store));
    let mut mem = base_mem;
    healed
        .run(&target, &options, "saxpy_f32", &inputs.args, &mut mem)
        .expect("healed entry loads");
    assert_eq!(
        healed.stats().disk_hits,
        1,
        "the overwrite healed the entry"
    );
    assert_eq!(healed.stats().compiles, 0);
    store.clear();
}

/// A bit-flip anywhere in an entry's payload trips the FNV-1a checksum:
/// the entry is rejected (never decoded into a wrong artifact), the engine
/// recompiles bit-identically, and the overwrite heals the store.
#[test]
fn checksum_corrupted_entries_are_rejected_and_overwritten() {
    let store = temp_store("checksum");
    let module = offline();
    let options = JitOptions::split();
    let target = TargetDesc::arm_neon();

    let mut ws = Workspace::sized_for(N);
    let inputs = prepare("sum_u8", N, 11, &mut ws);
    let base_mem = ws.into_bytes();

    let cold = ExecutionEngine::new(module.clone()).with_store(Arc::clone(&store));
    let mut cold_mem = base_mem.clone();
    let reference = cold
        .run(&target, &options, "sum_u8", &inputs.args, &mut cold_mem)
        .expect("cold run succeeds");

    // Flip one payload bit in the middle of each entry.
    for entry in entry_files(&store) {
        let mut bytes = std::fs::read(&entry).expect("entry readable");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&entry, &bytes).expect("entry writable");
    }

    let engine = ExecutionEngine::new(module.clone()).with_store(Arc::clone(&store));
    let mut mem = base_mem.clone();
    let run = engine
        .run(&target, &options, "sum_u8", &inputs.args, &mut mem)
        .expect("corruption must fall back, not fail");
    assert_eq!(run.result, reference.result);
    assert_eq!(mem, cold_mem);
    assert_eq!(engine.stats().disk_rejects, 1);
    assert_eq!(engine.stats().compiles, 1);

    let healed = ExecutionEngine::new(module).with_store(Arc::clone(&store));
    let mut mem = base_mem;
    healed
        .run(&target, &options, "sum_u8", &inputs.args, &mut mem)
        .expect("healed entry loads");
    assert_eq!(healed.stats().disk_hits, 1);
    assert_eq!(healed.stats().compiles, 0);
    store.clear();
}

/// Two engines (two simulated processes) sharing one store directory, both
/// starting cold and racing across the full target catalogue: every run is
/// correct, every key resolves exactly once per engine (a compile or a disk
/// hit, depending on who published first), nothing is ever rejected (atomic
/// temp-file + rename writes mean a reader sees a full entry or none), and
/// a third engine afterwards starts fully warm.
#[test]
fn two_engines_share_one_store_concurrently() {
    let store = temp_store("concurrent");
    let module = offline();
    let options = JitOptions::split();
    let targets = TargetDesc::presets();
    let keys = targets.len();

    // Per-target references from fresh single-threaded compiles.
    let mut references = Vec::new();
    for target in &targets {
        let mut ws = Workspace::sized_for(N);
        let inputs = prepare("saxpy_f32", N, 0x5eed, &mut ws);
        let mut mem = ws.into_bytes();
        let run = run_on_target(
            &module,
            target,
            &options,
            "saxpy_f32",
            &inputs.args,
            &mut mem,
        )
        .expect("reference run succeeds");
        references.push((inputs, mem, run));
    }

    let engines: Vec<_> = (0..2)
        .map(|_| Arc::new(ExecutionEngine::new(module.clone()).with_store(Arc::clone(&store))))
        .collect();
    let barrier = Arc::new(Barrier::new(engines.len()));
    std::thread::scope(|scope| {
        for engine in &engines {
            let barrier = Arc::clone(&barrier);
            let targets = &targets;
            let references = &references;
            scope.spawn(move || {
                barrier.wait();
                for (target, (inputs, ref_mem, reference)) in targets.iter().zip(references) {
                    let mut ws = Workspace::sized_for(N);
                    let _ = prepare("saxpy_f32", N, 0x5eed, &mut ws);
                    let mut mem = ws.into_bytes();
                    let run = engine
                        .run(target, &options, "saxpy_f32", &inputs.args, &mut mem)
                        .expect("concurrent run succeeds");
                    assert_eq!(run.result, reference.result, "{}", target.name);
                    assert_eq!(&mem, ref_mem, "{}", target.name);
                }
            });
        }
    });

    for engine in &engines {
        let stats = engine.stats();
        assert_eq!(
            stats.compiles + stats.disk_hits,
            keys as u64,
            "each engine resolves each key exactly once — by compiling or by loading"
        );
        assert_eq!(
            stats.disk_rejects, 0,
            "atomic writes never expose torn entries"
        );
    }
    assert_eq!(
        store.len(),
        keys,
        "concurrent publication converges to one entry per key"
    );

    // A third process after the race: fully warm.
    let warm = ExecutionEngine::new(module).with_store(Arc::clone(&store));
    for target in &targets {
        let mut ws = Workspace::sized_for(N);
        let inputs = prepare("saxpy_f32", N, 0x5eed, &mut ws);
        let mut mem = ws.into_bytes();
        warm.run(target, &options, "saxpy_f32", &inputs.args, &mut mem)
            .expect("warm run succeeds");
    }
    assert_eq!(
        warm.stats().compiles,
        0,
        "the shared store leaves nothing to compile"
    );
    assert_eq!(warm.stats().disk_hits, keys as u64);
    store.clear();
}
