//! Serving-grade tests for the async request layer: soak, cache churn under
//! load, graceful shutdown, backpressure accounting, tear-free stats
//! snapshots under churn, and flood-versus-shutdown races.
//!
//! The contract under test: whatever the interleaving of submitting threads,
//! worker scheduling and cache eviction, every served response is
//! **bit-identical** to a fresh single-threaded [`run_on_target`] reference
//! (same `Execution` measurement, same memory image), online compilation
//! happens exactly once per distinct (module, target, options) triple unless
//! an LRU bound forces recompiles, and a graceful shutdown answers every
//! accepted request.

use splitc::serve::{Request, ServeModule, Server, ServerConfig, SubmitError};
use splitc::splitc_minic::compile_source;
use splitc::{checksum_bytes, prepare, run_on_target, EngineError, Execution, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::{MachineValue, TargetDesc};
use splitc_vbc::Module;
use splitc_workloads::{kernel, module_for, table1_kernels, Kernel};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A reference outcome: what one request must reproduce, bit for bit.
struct Expected {
    execution: Execution,
    mem: Vec<u8>,
    checksum: u64,
}

/// Compile `kernels` into one optimized module.
fn offline(kernels: &[Kernel], name: &str) -> Module {
    let mut module = module_for(kernels, name).expect("catalogue compiles");
    optimize_module(&mut module, &OptOptions::full());
    module
}

/// The single-threaded reference: prepare inputs from `seed`, run once via
/// `run_on_target` (a fresh, cache-free compile), keep everything.
fn reference(
    module: &Module,
    kernel_name: &str,
    target: &TargetDesc,
    n: usize,
    seed: u64,
) -> Expected {
    let mut ws = Workspace::sized_for(n);
    let prepared = prepare(kernel_name, n, seed, &mut ws);
    let execution = run_on_target(
        module,
        target,
        &JitOptions::split(),
        kernel_name,
        &prepared.args,
        ws.bytes_mut(),
    )
    .expect("reference run succeeds");
    let checksum = checksum_bytes(execution.result, &prepared, ws.bytes());
    Expected {
        execution,
        mem: ws.into_bytes(),
        checksum,
    }
}

/// Build the request whose response must match [`reference`] for the same
/// coordinates: identical inputs prepared from the same seed.
fn request_for(
    module: &ServeModule,
    kernel_name: &str,
    target: &TargetDesc,
    n: usize,
    seed: u64,
) -> Request {
    let mut ws = Workspace::sized_for(n);
    let prepared = prepare(kernel_name, n, seed, &mut ws);
    Request {
        module: module.clone(),
        kernel: kernel_name.to_owned(),
        target: target.clone(),
        options: JitOptions::split(),
        args: prepared.args.clone(),
        mem: ws.into_bytes(),
        deadline: None,
        tag: 0,
    }
}

/// Deterministic per-coordinate input seed.
fn seed_for(ki: usize, ti: usize, rep: usize) -> u64 {
    0x5e2 + (ki as u64) * 1_000 + (ti as u64) * 10 + rep as u64
}

/// A permutation of `0..len` that differs per `thread`: rotated start,
/// coprime stride — cheap deterministic interleaving without an RNG.
fn shuffled(len: usize, thread: usize, stride: usize) -> Vec<usize> {
    assert_eq!(gcd(stride, len), 1, "stride must generate the full cycle");
    (0..len).map(|i| (thread * 13 + i * stride) % len).collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[test]
fn soak_many_threads_many_modules_all_targets_bit_identical_to_reference() {
    const N: usize = 64;
    const REPEATS: usize = 3;
    const THREADS: usize = 8;
    let names = ["vecadd_f32", "saxpy_f32", "sum_u8", "prefix_sum_i32"];
    // Mixed-module traffic: each kernel is its own deployment.
    let modules: Vec<ServeModule> = names
        .iter()
        .map(|name| ServeModule::new(offline(&[kernel(name).unwrap()], name)))
        .collect();
    let targets = TargetDesc::presets();

    // Single-threaded reference for every (module, target, repeat) cell.
    let mut expected: HashMap<(usize, usize, usize), Expected> = HashMap::new();
    for (ki, name) in names.iter().enumerate() {
        for (ti, target) in targets.iter().enumerate() {
            for rep in 0..REPEATS {
                expected.insert(
                    (ki, ti, rep),
                    reference(modules[ki].module(), name, target, N, seed_for(ki, ti, rep)),
                );
            }
        }
    }
    let expected = Arc::new(expected);

    let cells: Vec<(usize, usize, usize)> = (0..names.len())
        .flat_map(|ki| {
            (0..targets.len()).flat_map(move |ti| (0..REPEATS).map(move |rep| (ki, ti, rep)))
        })
        .collect();
    let server = Server::start(
        ServerConfig::default()
            .with_workers(4)
            .with_queue_capacity(32),
    );

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let server = &server;
            let cells = &cells;
            let modules = &modules;
            let targets = &targets;
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                // Each thread walks the full matrix in its own interleaving
                // and submits everything before waiting on anything, so many
                // requests are genuinely in flight at once.
                let order = shuffled(cells.len(), thread, 7);
                let mut handles = Vec::with_capacity(order.len());
                for &cell in order.iter().map(|&i| &cells[i]) {
                    let (ki, ti, rep) = cell;
                    let request = request_for(
                        &modules[ki],
                        names[ki],
                        &targets[ti],
                        N,
                        seed_for(ki, ti, rep),
                    );
                    handles.push((cell, server.submit(request).expect("server is accepting")));
                }
                for ((ki, ti, rep), handle) in handles {
                    let response = handle.wait().expect("every accepted request is answered");
                    let run = response.outcome.unwrap_or_else(|e| {
                        panic!("{} on {} failed: {e}", names[ki], targets[ti].name)
                    });
                    let want = &expected[&(ki, ti, rep)];
                    assert_eq!(
                        run, want.execution,
                        "{} on {} rep {rep}: served measurement diverged from the fresh reference",
                        names[ki], targets[ti].name
                    );
                    assert_eq!(
                        response.mem, want.mem,
                        "{} on {} rep {rep}: served memory image diverged",
                        names[ki], targets[ti].name
                    );
                }
            });
        }
    });

    let total = (THREADS * cells.len()) as u64;
    let stats = server.shutdown();
    assert_eq!(stats.accepted, total);
    assert_eq!(stats.completed, total, "shutdown lost accepted requests");
    assert_eq!(stats.rejected, 0, "blocking submits are never rejected");
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.engines, names.len(), "one shared engine per module");
    assert_eq!(
        stats.cache.compiles,
        (names.len() * targets.len()) as u64,
        "exactly one compile per distinct (module, target, options) triple"
    );
    assert_eq!(stats.cache.evictions, 0, "unbounded caches never evict");
    // Continuous batching: the engine is consulted once per served batch,
    // not once per request, so lookups track the batch count exactly and
    // every completion is accounted to exactly one batch.
    assert_eq!(
        stats.cache.lookups(),
        stats.batch_sizes.count(),
        "one engine lookup per served batch"
    );
    assert!(
        stats.cache.lookups() <= total,
        "batching never adds lookups"
    );
    assert_eq!(
        stats.cache.hits,
        stats.cache.lookups() - stats.cache.compiles
    );
    assert_eq!(
        stats.batch_sizes.sum(),
        total,
        "every completion is counted in exactly one batch"
    );
    assert_eq!(stats.queue_wait.count(), total);
    assert_eq!(stats.execute.count(), total);
    assert_eq!(stats.per_target.len(), targets.len());
    let per_target_each = total / targets.len() as u64;
    for (name, count) in &stats.per_target {
        assert_eq!(count, &per_target_each, "uneven traffic on {name}");
    }
}

#[test]
fn cache_churn_under_load_stays_bit_identical_while_evicting() {
    const N: usize = 48;
    const REPEATS: usize = 2;
    const THREADS: usize = 4;
    const CACHE_CAPACITY: usize = 2;
    // One module holding the whole Table 1 catalogue; its engine's working
    // set is the 9 preset targets — far over the 2-entry bound, so live
    // requests race eviction and recompilation continuously.
    let kernels = table1_kernels();
    let module = ServeModule::new(offline(&kernels, "churn"));
    let targets = TargetDesc::presets();
    assert!(targets.len() > CACHE_CAPACITY);

    let mut expected: HashMap<(usize, usize, usize), Expected> = HashMap::new();
    for (ki, k) in kernels.iter().enumerate() {
        for (ti, target) in targets.iter().enumerate() {
            for rep in 0..REPEATS {
                expected.insert(
                    (ki, ti, rep),
                    reference(module.module(), k.name, target, N, seed_for(ki, ti, rep)),
                );
            }
        }
    }
    let expected = Arc::new(expected);

    let cells: Vec<(usize, usize, usize)> = (0..kernels.len())
        .flat_map(|ki| {
            (0..targets.len()).flat_map(move |ti| (0..REPEATS).map(move |rep| (ki, ti, rep)))
        })
        .collect();
    let server = Server::start(
        ServerConfig::default()
            .with_workers(4)
            .with_queue_capacity(16)
            .with_cache_capacity(CACHE_CAPACITY),
    );

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let server = &server;
            let cells = &cells;
            let module = &module;
            let kernels = &kernels;
            let targets = &targets;
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let order = shuffled(cells.len(), thread, 5);
                let mut handles = Vec::with_capacity(order.len());
                for &cell in order.iter().map(|&i| &cells[i]) {
                    let (ki, ti, rep) = cell;
                    let request = request_for(
                        module,
                        kernels[ki].name,
                        &targets[ti],
                        N,
                        seed_for(ki, ti, rep),
                    );
                    handles.push((cell, server.submit(request).expect("server is accepting")));
                }
                for ((ki, ti, rep), handle) in handles {
                    let response = handle.wait().expect("every accepted request is answered");
                    let run = response.outcome.unwrap_or_else(|e| {
                        panic!("{} on {} failed: {e}", kernels[ki].name, targets[ti].name)
                    });
                    let want = &expected[&(ki, ti, rep)];
                    assert_eq!(
                        run, want.execution,
                        "{} on {} rep {rep}: eviction churn changed a served measurement",
                        kernels[ki].name, targets[ti].name
                    );
                    assert_eq!(
                        response.mem, want.mem,
                        "{} on {} rep {rep}: eviction churn changed a served memory image",
                        kernels[ki].name, targets[ti].name
                    );
                }
            });
        }
    });

    let total = (THREADS * cells.len()) as u64;
    let stats = server.shutdown();
    assert_eq!(stats.completed, total);
    assert_eq!(stats.engines, 1);
    assert!(
        stats.cache.evictions > 0,
        "a {CACHE_CAPACITY}-entry cache over {} targets must evict",
        targets.len()
    );
    assert!(
        stats.cache.compiles > targets.len() as u64,
        "evicted pairs must have been recompiled"
    );
    // The consistent-snapshot invariant at quiescence: resident entries are
    // exactly compiles - evictions, and the LRU bound caps them.
    assert!(stats.cache.compiles - stats.cache.evictions <= CACHE_CAPACITY as u64);
    // One engine lookup per served batch (not per request, under batching).
    assert_eq!(stats.cache.lookups(), stats.batch_sizes.count());
    assert_eq!(stats.batch_sizes.sum(), total);
}

#[test]
fn graceful_shutdown_answers_every_accepted_request_and_refuses_the_rest() {
    const N: usize = 32;
    const THREADS: usize = 4;
    const TRIES: usize = 120;
    let module = ServeModule::new(offline(&[kernel("dscal_f32").unwrap()], "shutdown"));
    let target = TargetDesc::x86_sse();
    let server = Arc::new(Server::start(
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(8),
    ));
    // Producers get one guaranteed acceptance each before the main thread
    // starts shutting down; everything after that races the shutdown.
    let barrier = Arc::new(Barrier::new(THREADS + 1));

    let producers: Vec<_> = (0..THREADS)
        .map(|thread| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let module = module.clone();
            let target = target.clone();
            std::thread::spawn(move || {
                let mut accepted = Vec::new();
                let seed0 = (thread * TRIES) as u64;
                accepted.push((
                    seed0,
                    server
                        .submit(request_for(&module, "dscal_f32", &target, N, seed0))
                        .expect("the server is open before the barrier"),
                ));
                barrier.wait();
                let mut refused = 0usize;
                for i in 1..TRIES {
                    let seed = seed0 + i as u64;
                    match server.submit(request_for(&module, "dscal_f32", &target, N, seed)) {
                        Ok(handle) => accepted.push((seed, handle)),
                        Err(SubmitError::ShuttingDown(request)) => {
                            // The refused request comes back intact.
                            assert_eq!(request.kernel, "dscal_f32");
                            refused += 1;
                            break;
                        }
                        Err(SubmitError::QueueFull(_)) => {
                            panic!("blocking submit must wait, not report a full queue")
                        }
                    }
                }
                (accepted, refused)
            })
        })
        .collect();

    barrier.wait();
    let stats = server.shutdown();

    let mut total_accepted = 0u64;
    for producer in producers {
        let (accepted, _refused) = producer.join().expect("producer panicked");
        total_accepted += accepted.len() as u64;
        for (seed, handle) in accepted {
            // Zero loss: accepted before or during shutdown, answered either
            // way — and still correct.
            let response = handle
                .wait()
                .expect("an accepted request must be answered across shutdown");
            let run = response.outcome.expect("accepted request executes");
            let want = reference(module.module(), "dscal_f32", &target, N, seed);
            assert_eq!(run, want.execution);
            assert_eq!(response.mem, want.mem);
            assert_eq!(
                checksum_bytes(
                    run.result,
                    &prepare("dscal_f32", N, seed, &mut Workspace::sized_for(N)),
                    &response.mem
                ),
                want.checksum
            );
        }
    }
    assert!(
        total_accepted >= THREADS as u64,
        "the pre-barrier submissions"
    );
    // `stats` was taken inside shutdown() after the drain: nothing accepted
    // afterwards, so the producers' tally matches it exactly.
    assert_eq!(stats.accepted, total_accepted);
    assert_eq!(stats.completed, total_accepted, "drain lost requests");
    assert_eq!(stats.queue_depth, 0);
    // And the server stays closed.
    assert!(matches!(
        server.submit(request_for(&module, "dscal_f32", &target, N, 9_999)),
        Err(SubmitError::ShuttingDown(_))
    ));
}

#[test]
fn try_submit_backpressure_accounting_adds_up_under_a_flood() {
    const THREADS: usize = 3;
    const TRIES: usize = 100;
    let module = ServeModule::new(offline(&[kernel("sum_u8").unwrap()], "flood"));
    let target = TargetDesc::powerpc();
    // One worker behind a tiny queue: the flood must hit QueueFull at least
    // occasionally, and every refusal must be counted and handed back.
    let server = Arc::new(Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_queue_capacity(2),
    ));

    let floods: Vec<_> = (0..THREADS)
        .map(|thread| {
            let server = Arc::clone(&server);
            let module = module.clone();
            let target = target.clone();
            std::thread::spawn(move || {
                let mut ok = Vec::new();
                let mut full = 0u64;
                for i in 0..TRIES {
                    let seed = (thread * TRIES + i) as u64;
                    match server.try_submit(request_for(&module, "sum_u8", &target, 16, seed)) {
                        Ok(handle) => ok.push(handle),
                        Err(SubmitError::QueueFull(request)) => {
                            assert_eq!(request.kernel, "sum_u8", "refused request intact");
                            full += 1;
                        }
                        Err(SubmitError::ShuttingDown(_)) => {
                            panic!("nobody shuts the server down during the flood")
                        }
                    }
                }
                (ok, full)
            })
        })
        .collect();

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for flood in floods {
        let (ok, full) = flood.join().expect("flood thread panicked");
        accepted += ok.len() as u64;
        rejected += full;
        for handle in ok {
            handle
                .wait()
                .expect("accepted request answered")
                .outcome
                .expect("accepted request executes");
        }
    }
    assert_eq!(accepted + rejected, (THREADS * TRIES) as u64);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, accepted);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.rejected_shutdown, 0, "nobody raced the shutdown here");
    assert_eq!(stats.completed, accepted, "no accepted request was lost");
}

#[test]
fn stats_snapshots_stay_consistent_while_traffic_churns() {
    const N: usize = 24;
    const PRODUCERS: usize = 2;
    const PER_PRODUCER: usize = 150;
    const OBSERVATIONS: usize = 200;
    let module = ServeModule::new(offline(&[kernel("vecadd_f32").unwrap()], "observe"));
    let target = TargetDesc::x86_sse();
    // A small queue keeps depth bouncing between empty and full while the
    // observer samples, so the tear-free snapshot is exercised at both
    // extremes, not just in a steady state.
    let server = Server::start(
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(4),
    );

    std::thread::scope(|scope| {
        for thread in 0..PRODUCERS {
            let server = &server;
            let module = &module;
            let target = &target;
            scope.spawn(move || {
                let mut handles = Vec::with_capacity(PER_PRODUCER);
                for i in 0..PER_PRODUCER {
                    let seed = (thread * PER_PRODUCER + i) as u64;
                    handles.push(
                        server
                            .submit(request_for(module, "vecadd_f32", target, N, seed))
                            .expect("server is accepting"),
                    );
                }
                for handle in handles {
                    handle.wait().expect("answered").outcome.expect("executes");
                }
            });
        }

        // The observer races the producers and the workers: every snapshot
        // it takes must be internally consistent — a completion is only
        // visible once its request has left the queue, the high-water mark
        // never trails the depth, and the counters never run backwards.
        let mut last_accepted = 0u64;
        let mut last_completed = 0u64;
        for _ in 0..OBSERVATIONS {
            let stats = server.stats();
            assert!(
                stats.completed + stats.queue_depth as u64 <= stats.accepted,
                "torn snapshot: {} completed + {} queued > {} accepted",
                stats.completed,
                stats.queue_depth,
                stats.accepted
            );
            assert!(
                stats.queue_high_water >= stats.queue_depth,
                "high water {} trails live depth {}",
                stats.queue_high_water,
                stats.queue_depth
            );
            assert!(stats.accepted >= last_accepted, "accepted ran backwards");
            assert!(stats.completed >= last_completed, "completed ran backwards");
            assert_eq!(stats.rejected, 0);
            assert_eq!(stats.rejected_shutdown, 0);
            last_accepted = stats.accepted;
            last_completed = stats.completed;
        }
    });

    let total = (PRODUCERS * PER_PRODUCER) as u64;
    let stats = server.shutdown();
    assert_eq!(stats.accepted, total);
    assert_eq!(stats.completed, total);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn a_flood_racing_shutdown_accounts_for_every_attempt_exactly_once() {
    const THREADS: usize = 3;
    const TRIES: usize = 200;
    let module = ServeModule::new(offline(&[kernel("sum_u8").unwrap()], "race"));
    let target = TargetDesc::powerpc();
    // A tiny queue behind one worker so the flood sees all three outcomes:
    // accepted, refused-full, and — once the main thread pulls the plug
    // mid-flood — refused-shutting-down.
    let server = Arc::new(Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_queue_capacity(2),
    ));
    let barrier = Arc::new(Barrier::new(THREADS + 1));

    let floods: Vec<_> = (0..THREADS)
        .map(|thread| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            let module = module.clone();
            let target = target.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut ok = Vec::new();
                let mut full = 0u64;
                let mut shut = 0u64;
                for i in 0..TRIES {
                    let seed = (thread * TRIES + i) as u64;
                    match server.try_submit(request_for(&module, "sum_u8", &target, 16, seed)) {
                        Ok(handle) => ok.push(handle),
                        Err(SubmitError::QueueFull(request)) => {
                            assert_eq!(request.kernel, "sum_u8", "refused request intact");
                            full += 1;
                        }
                        Err(SubmitError::ShuttingDown(request)) => {
                            assert_eq!(request.kernel, "sum_u8", "refused request intact");
                            shut += 1;
                        }
                    }
                }
                (ok, full, shut)
            })
        })
        .collect();

    // Pull the plug while the flood is in full swing.
    barrier.wait();
    server.shutdown();

    let mut accepted = 0u64;
    let mut rejected_full = 0u64;
    let mut rejected_shutdown = 0u64;
    for flood in floods {
        let (ok, full, shut) = flood.join().expect("flood thread panicked");
        accepted += ok.len() as u64;
        rejected_full += full;
        rejected_shutdown += shut;
        for handle in ok {
            // Accepted before the close means answered despite the close.
            handle
                .wait()
                .expect("accepted request answered across shutdown")
                .outcome
                .expect("accepted request executes");
        }
    }
    assert_eq!(
        accepted + rejected_full + rejected_shutdown,
        (THREADS * TRIES) as u64,
        "every attempt lands in exactly one bucket"
    );
    // The floods kept racing after shutdown() returned its own snapshot, so
    // re-read the stats now that every thread has been joined: the server's
    // books must agree with the producers' tallies bucket for bucket.
    let stats = server.stats();
    assert_eq!(stats.accepted, accepted);
    assert_eq!(stats.rejected, rejected_full);
    assert_eq!(stats.rejected_shutdown, rejected_shutdown);
    assert_eq!(stats.completed, accepted, "no accepted request was lost");
    assert_eq!(stats.queue_depth, 0);
}

/// A kernel that, left alone, spins through hundreds of millions of back
/// edges — far past any reasonable deadline. The interpreter's fuel cap
/// would stop it eventually, but only after tens of seconds; a cooperative
/// cancellation must stop it within milliseconds of the deadline instead.
fn runaway_module() -> ServeModule {
    let mut module = compile_source(
        "fn spin(n: i32, out: *i32) {
             let acc: i32 = 0;
             for (let i: i32 = 0; i < n; i = i + 1) { acc = acc + i; }
             out[0] = acc;
         }",
        "runaway",
    )
    .expect("runaway kernel compiles");
    optimize_module(&mut module, &OptOptions::full());
    ServeModule::new(module)
}

fn runaway_request(module: &ServeModule, target: &TargetDesc, deadline: Instant) -> Request {
    Request {
        module: module.clone(),
        kernel: "spin".to_owned(),
        target: target.clone(),
        options: JitOptions::split(),
        args: vec![MachineValue::Int(200_000_000), MachineValue::Int(0)],
        mem: vec![0u8; 64],
        deadline: Some(deadline),
        tag: 0,
    }
}

#[test]
fn a_deadline_cancels_a_runaway_kernel_mid_flight() {
    const N: usize = 32;
    let runaway = runaway_module();
    let well_behaved = ServeModule::new(offline(&[kernel("vecadd_f32").unwrap()], "bystander"));
    let target = TargetDesc::x86_sse();
    let server = Server::start(
        ServerConfig::default()
            .with_workers(2)
            .with_queue_capacity(8),
    );

    let started = Instant::now();
    let doomed = server
        .submit(runaway_request(
            &runaway,
            &target,
            Instant::now() + Duration::from_millis(50),
        ))
        .expect("server is accepting");
    // A concurrent, unrelated request on the other worker must be entirely
    // unaffected by the cancellation next door.
    let bystander = server
        .submit(request_for(&well_behaved, "vecadd_f32", &target, N, 7))
        .expect("server is accepting");

    let response = doomed
        .wait()
        .expect("a cancelled request is still answered");
    let elapsed = started.elapsed();
    assert!(
        matches!(response.outcome, Err(EngineError::DeadlineExceeded)),
        "expected DeadlineExceeded, got {:?}",
        response.outcome
    );
    assert!(
        response.attempts >= 1,
        "the kernel was genuinely executing when the deadline fired"
    );
    // The loop would ride the fuel cap for tens of seconds; the cooperative
    // check at every back edge must stop it within moments of the 50 ms
    // deadline. 10 s leaves room for arbitrarily slow debug-build CI while
    // still being far below fuel exhaustion.
    assert!(
        elapsed < Duration::from_secs(10),
        "cancellation did not interrupt the runaway loop (took {elapsed:?})"
    );

    let response = bystander.wait().expect("answered");
    let want = reference(well_behaved.module(), "vecadd_f32", &target, N, 7);
    assert_eq!(
        response.outcome.expect("the bystander executes"),
        want.execution
    );
    assert_eq!(response.mem, want.mem);

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(
        stats.completed, 2,
        "a cancelled request still counts as completed"
    );
    assert_eq!(stats.cancelled, 1, "exactly the runaway run was cancelled");
    assert_eq!(
        stats.expired, 0,
        "it was cancelled mid-flight, not shed from the queue"
    );
}

#[test]
fn shutdown_with_deadlines_answers_every_accepted_handle_exactly_once() {
    const N: usize = 32;
    const EXPIRED: usize = 4;
    const FRESH: usize = 4;
    let runaway = runaway_module();
    let module = ServeModule::new(offline(&[kernel("vecadd_f32").unwrap()], "drain"));
    let target = TargetDesc::x86_sse();
    // One worker: the runaway occupies it while everything else queues, so
    // the drop below races a live in-flight deadline and a queue holding
    // both already-expired and still-fresh work.
    let server = Server::start(
        ServerConfig::default()
            .with_workers(1)
            .with_queue_capacity((EXPIRED + FRESH + 1) * 2),
    );

    let doomed = server
        .submit(runaway_request(
            &runaway,
            &target,
            Instant::now() + Duration::from_millis(100),
        ))
        .expect("server is accepting");
    let mut expired = Vec::new();
    for i in 0..EXPIRED {
        // A deadline that has already passed at submission: the drain must
        // shed it at dequeue, not run it.
        let mut request = request_for(&module, "vecadd_f32", &target, N, i as u64);
        request.deadline = Some(Instant::now());
        expired.push(server.submit(request).expect("server is accepting"));
    }
    let mut fresh = Vec::new();
    for i in 0..FRESH {
        let seed = 100 + i as u64;
        fresh.push((
            seed,
            server
                .submit(request_for(&module, "vecadd_f32", &target, N, seed))
                .expect("server is accepting"),
        ));
    }

    // Pull the plug with the runaway still in flight. The drop must drain:
    // the watchdog has to outlive the workers so the in-flight deadline can
    // still cancel the runaway — otherwise this drop deadlocks.
    drop(server);

    let response = doomed.wait().expect("the in-flight request is answered");
    assert!(
        matches!(response.outcome, Err(EngineError::DeadlineExceeded)),
        "expected the runaway to be cancelled, got {:?}",
        response.outcome
    );
    assert!(response.attempts >= 1, "it was executing when cancelled");

    for handle in expired {
        let response = handle.wait().expect("an expired request is answered");
        assert!(
            matches!(response.outcome, Err(EngineError::DeadlineExceeded)),
            "expected an expired-in-queue shed, got {:?}",
            response.outcome
        );
        assert_eq!(
            response.attempts, 0,
            "a request shed at dequeue never reaches execution"
        );
    }
    for (seed, handle) in fresh {
        let response = handle.wait().expect("a fresh request is answered");
        let run = response.outcome.expect("a fresh request executes");
        let want = reference(module.module(), "vecadd_f32", &target, N, seed);
        assert_eq!(run, want.execution, "drain changed a served measurement");
        assert_eq!(
            response.mem, want.mem,
            "drain changed a served memory image"
        );
    }
}
