//! Property-based tests over the core data structures and transformations.

use proptest::prelude::*;
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::{MachineValue, Simulator, TargetDesc};
use splitc_vbc::{
    decode_module, encode_module, AnnotationValue, BinOp, FunctionBuilder, Interpreter, Memory,
    Module, ScalarType, Type, Value,
};
use splitc_workloads::SAXPY_F32;

/// Strategy producing arbitrary (but structurally valid) annotation values.
fn annotation_value() -> impl Strategy<Value = AnnotationValue> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(AnnotationValue::Int),
        any::<bool>().prop_map(AnnotationValue::Bool),
        proptest::num::f64::NORMAL.prop_map(AnnotationValue::Float),
        "[a-z0-9 ]{0,12}".prop_map(AnnotationValue::Str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(AnnotationValue::List),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..4).prop_map(AnnotationValue::Map),
        ]
    })
}

/// Strategy producing small straight-line integer functions.
fn straight_line_module() -> impl Strategy<Value = Module> {
    let op = prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Min),
        Just(BinOp::Max),
    ];
    (
        prop::collection::vec((op, 0usize..8, 0usize..8), 1..20),
        prop::collection::vec(any::<i32>(), 2..8),
        prop::collection::btree_map("[a-z.]{1,16}", annotation_value(), 0..4),
    )
        .prop_map(|(ops, consts, annotations)| {
            let mut b = FunctionBuilder::new("f", &[], Some(Type::Scalar(ScalarType::I32)));
            let mut values: Vec<_> = consts
                .iter()
                .map(|c| b.const_int(ScalarType::I32, i64::from(*c)))
                .collect();
            for (op, i, j) in ops {
                let lhs = values[i % values.len()];
                let rhs = values[j % values.len()];
                let v = b.bin(op, ScalarType::I32, lhs, rhs);
                values.push(v);
            }
            let last = *values.last().expect("at least the constants");
            b.ret(Some(last));
            let mut f = b.finish();
            for (k, v) in annotations {
                f.annotations.set(&k, v);
            }
            let mut m = Module::new("prop");
            m.add_function(f);
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The wire format is lossless for arbitrary generated modules.
    #[test]
    fn encode_decode_round_trips(module in straight_line_module()) {
        let bytes = encode_module(&module);
        let decoded = decode_module(&bytes).expect("decodes");
        prop_assert_eq!(decoded, module);
    }

    /// Generated modules verify, fold, and still compute the same value in the
    /// interpreter after offline optimization.
    #[test]
    fn constant_folding_preserves_results(module in straight_line_module()) {
        prop_assume!(splitc_vbc::verify_module(&module).is_ok());
        let mut mem = Memory::new(256);
        let mut interp = Interpreter::new(&module);
        let before = interp.run("f", &[], &mut mem);
        let mut optimized = module.clone();
        optimize_module(&mut optimized, &OptOptions::full());
        let mut interp = Interpreter::new(&optimized);
        let after = interp.run("f", &[], &mut mem);
        // Division by zero cannot occur (no div ops generated), so both runs succeed.
        prop_assert_eq!(before.expect("runs"), after.expect("runs"));
    }

    /// The interpreter and a simulated target agree on generated modules, and
    /// the JIT accepts whatever the generator produces.
    #[test]
    fn jit_matches_interpreter_on_generated_modules(module in straight_line_module()) {
        prop_assume!(splitc_vbc::verify_module(&module).is_ok());
        let mut mem = Memory::new(256);
        let mut interp = Interpreter::new(&module);
        let expected = interp.run("f", &[], &mut mem).expect("interpreter runs");
        let target = TargetDesc::powerpc();
        let (program, _) = splitc_jit::compile_module(&module, &target, &JitOptions::split())
            .expect("compiles");
        let mut sim = Simulator::new(&program, &target);
        let mut bytes = vec![0u8; 256];
        let got = sim.run("f", &[], &mut bytes).expect("simulates");
        let expected = match expected {
            Some(Value::Int(v)) => Some(MachineValue::Int(v)),
            other => panic!("unexpected interpreter result {other:?}"),
        };
        prop_assert_eq!(got, expected);
    }

    /// Vectorized saxpy equals scalar saxpy on the interpreter for arbitrary
    /// inputs and lengths (including lengths smaller than the vector factor).
    #[test]
    fn vectorized_saxpy_matches_scalar(
        n in 0usize..70,
        a in -8.0f32..8.0,
        seed in 0u64..1000,
    ) {
        let mut scalar = splitc_minic::compile_source(SAXPY_F32, "k").expect("compiles");
        let mut vectorized = scalar.clone();
        optimize_module(&mut vectorized, &OptOptions::full());
        optimize_module(&mut scalar, &OptOptions::scalar_only());

        let mut gen = splitc_workloads::DataGen::new(seed);
        let xs = gen.f32s(n.max(1), 50.0);
        let ys = gen.f32s(n.max(1), 50.0);

        let run = |module: &Module| {
            let mut mem = Memory::new(1 << 14);
            let x = mem.alloc(4 * n.max(1) as u64);
            let y = mem.alloc(4 * n.max(1) as u64);
            mem.write_f32s(x, &xs);
            mem.write_f32s(y, &ys);
            let mut interp = Interpreter::new(module);
            interp
                .run(
                    "saxpy_f32",
                    &[
                        Value::Int(n as i64),
                        Value::Float(f64::from(a)),
                        Value::Int(x as i64),
                        Value::Int(y as i64),
                    ],
                    &mut mem,
                )
                .expect("runs");
            mem.read_f32s(y, n.max(1))
        };
        prop_assert_eq!(run(&scalar), run(&vectorized));
    }
}
