//! Property-based tests over the core data structures and transformations.
//!
//! The properties are the same ones the original proptest suite checked
//! (wire-format round-tripping, optimization soundness, JIT/interpreter
//! agreement, vectorization equivalence); the generator is a small seeded
//! splitmix64 so the suite runs fully offline and deterministically.

use splitc::ExecutionEngine;
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::MachineValue;
use splitc_vbc::{
    decode_module, encode_module, AnnotationValue, BinOp, FunctionBuilder, Interpreter, Memory,
    Module, ScalarType, Type, Value,
};
use splitc_workloads::SAXPY_F32;

const CASES: u64 = 64;

/// Minimal deterministic generator (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// A normal f64 drawn from the full bit-pattern space (negative, tiny and
    /// huge values included), mirroring proptest's `f64::NORMAL` coverage.
    fn normal_f64(&mut self) -> f64 {
        loop {
            let v = f64::from_bits(self.next());
            if v.is_normal() {
                return v;
            }
        }
    }

    /// An arbitrary (but structurally valid) annotation value, at most
    /// `depth` levels deep.
    fn annotation_value(&mut self, depth: u32) -> AnnotationValue {
        let choices = if depth == 0 { 4 } else { 6 };
        match self.below(choices) {
            0 => AnnotationValue::Int(self.next() as i64),
            1 => AnnotationValue::Bool(self.next() & 1 == 1),
            2 => AnnotationValue::Float(self.normal_f64()),
            3 => {
                let len = self.below(12) as usize;
                AnnotationValue::Str(
                    (0..len)
                        .map(|_| (b'a' + self.below(26) as u8) as char)
                        .collect(),
                )
            }
            4 => {
                let len = self.below(4) as usize;
                AnnotationValue::List((0..len).map(|_| self.annotation_value(depth - 1)).collect())
            }
            _ => {
                let len = self.below(4) as usize;
                AnnotationValue::Map(
                    (0..len)
                        .map(|i| {
                            let key: String = (0..=i)
                                .map(|_| (b'a' + self.below(26) as u8) as char)
                                .collect();
                            (key, self.annotation_value(depth - 1))
                        })
                        .collect(),
                )
            }
        }
    }

    /// A small straight-line integer function wrapped in a module, mirroring
    /// the original proptest strategy: a pool of constants combined by a
    /// random sequence of division-free binary operations.
    fn straight_line_module(&mut self) -> Module {
        const OPS: [BinOp; 8] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Min,
            BinOp::Max,
        ];
        let mut b = FunctionBuilder::new("f", &[], Some(Type::Scalar(ScalarType::I32)));
        let num_consts = 2 + self.below(6) as usize;
        let mut values: Vec<_> = (0..num_consts)
            .map(|_| b.const_int(ScalarType::I32, self.next() as i32 as i64))
            .collect();
        let num_ops = 1 + self.below(19) as usize;
        for _ in 0..num_ops {
            let op = OPS[self.below(OPS.len() as u64) as usize];
            let lhs = values[self.below(values.len() as u64) as usize];
            let rhs = values[self.below(values.len() as u64) as usize];
            values.push(b.bin(op, ScalarType::I32, lhs, rhs));
        }
        let last = *values.last().expect("at least the constants");
        b.ret(Some(last));
        let mut f = b.finish();
        for _ in 0..self.below(4) {
            let key: String = (0..1 + self.below(8))
                .map(|_| (b'a' + self.below(26) as u8) as char)
                .collect();
            f.annotations.set(&key, self.annotation_value(2));
        }
        let mut m = Module::new("prop");
        m.add_function(f);
        m
    }
}

/// The wire format is lossless for arbitrary generated modules.
#[test]
fn encode_decode_round_trips() {
    for case in 0..CASES {
        let module = Gen(0xe2c0de + case).straight_line_module();
        let bytes = encode_module(&module);
        let decoded = decode_module(&bytes).expect("decodes");
        assert_eq!(decoded, module, "case {case}");
    }
}

/// Generated modules verify, fold, and still compute the same value in the
/// interpreter after offline optimization.
#[test]
fn constant_folding_preserves_results() {
    for case in 0..CASES {
        let module = Gen(0xf01d + case).straight_line_module();
        if splitc_vbc::verify_module(&module).is_err() {
            continue;
        }
        let mut mem = Memory::new(256);
        let mut interp = Interpreter::new(&module);
        let before = interp.run("f", &[], &mut mem);
        let mut optimized = module.clone();
        optimize_module(&mut optimized, &OptOptions::full());
        let mut interp = Interpreter::new(&optimized);
        let after = interp.run("f", &[], &mut mem);
        // Division by zero cannot occur (no div ops generated), so both run.
        assert_eq!(before.expect("runs"), after.expect("runs"), "case {case}");
    }
}

/// The interpreter and a simulated target agree on generated modules, and the
/// engine-cached JIT accepts whatever the generator produces.
#[test]
fn jit_matches_interpreter_on_generated_modules() {
    let target = splitc_targets::TargetDesc::powerpc();
    for case in 0..CASES {
        let module = Gen(0x717 + case).straight_line_module();
        if splitc_vbc::verify_module(&module).is_err() {
            continue;
        }
        let mut mem = Memory::new(256);
        let mut interp = Interpreter::new(&module);
        let expected = interp.run("f", &[], &mut mem).expect("interpreter runs");
        let engine = ExecutionEngine::new(module);
        let mut bytes = vec![0u8; 256];
        let run = engine
            .run(&target, &JitOptions::split(), "f", &[], &mut bytes)
            .expect("compiles and simulates");
        let expected = match expected {
            Some(Value::Int(v)) => Some(MachineValue::Int(v)),
            other => panic!("unexpected interpreter result {other:?}"),
        };
        assert_eq!(run.result, expected, "case {case}");
    }
}

/// Vectorized saxpy equals scalar saxpy on the interpreter for arbitrary
/// inputs and lengths (including lengths smaller than the vector factor).
#[test]
fn vectorized_saxpy_matches_scalar() {
    let mut scalar = splitc::splitc_minic::compile_source(SAXPY_F32, "k").expect("compiles");
    let mut vectorized = scalar.clone();
    optimize_module(&mut vectorized, &OptOptions::full());
    optimize_module(&mut scalar, &OptOptions::scalar_only());

    for n in 0usize..70 {
        let mut gen = splitc_workloads::DataGen::new(0x5a00 + n as u64);
        let a = gen.f32s(1, 8.0)[0];
        let xs = gen.f32s(n.max(1), 50.0);
        let ys = gen.f32s(n.max(1), 50.0);

        let run = |module: &Module| {
            let mut mem = Memory::new(1 << 14);
            let x = mem.alloc(4 * n.max(1) as u64);
            let y = mem.alloc(4 * n.max(1) as u64);
            mem.write_f32s(x, &xs);
            mem.write_f32s(y, &ys);
            let mut interp = Interpreter::new(module);
            interp
                .run(
                    "saxpy_f32",
                    &[
                        Value::Int(n as i64),
                        Value::Float(f64::from(a)),
                        Value::Int(x as i64),
                        Value::Int(y as i64),
                    ],
                    &mut mem,
                )
                .expect("runs");
            mem.read_f32s(y, n.max(1))
        };
        assert_eq!(run(&scalar), run(&vectorized), "n = {n}");
    }
}
