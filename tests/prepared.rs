//! Differential coverage for the pre-decoded execution path.
//!
//! `PreparedProgram` (deploy-time flattening, resolved jumps/calls,
//! prepare-time register validation, pooled frames, threaded fn-pointer
//! dispatch with macro-op fusion) must be **bit-identical** to the legacy
//! `MProgram` walk — results, memory effects and `SimStats` (cycles, spill
//! traffic, every counter) alike — for every catalogue kernel on every
//! simulated target, whether the threaded loop runs fused or unfused and on
//! the metered per-instruction fallback too. These tests pin that
//! equivalence down and also check that pooling/reuse never changes results.

use splitc::{checksum, prepare, PreparedProgram, PreparedSimulator, Workspace};
use splitc_jit::{compile_module, JitOptions, RegAllocMode};
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{ExecutionEngine, FramePool};
use splitc_targets::{SimStats, Simulator, TargetDesc, TimingKind};
use splitc_workloads::{all_kernels, module_for};

const N: usize = 173; // deliberately not a multiple of any lane count

#[test]
fn prepared_execution_is_bit_identical_to_the_legacy_walk_on_all_targets() {
    for kernel in all_kernels() {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        for target in TargetDesc::presets() {
            let (program, _jit) = compile_module(&module, &target, &JitOptions::split())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, target.name));

            // Legacy block-walking reference.
            let mut legacy_ws = Workspace::new(1 << 16);
            let prepared_inputs = prepare(kernel.name, N, 99, &mut legacy_ws);
            let mut legacy_sim = Simulator::new(&program, &target);
            let legacy_result = legacy_sim
                .run_legacy(kernel.name, &prepared_inputs.args, legacy_ws.bytes_mut())
                .unwrap_or_else(|e| panic!("{} on {} (legacy): {e}", kernel.name, target.name));
            let legacy_stats = legacy_sim.stats();
            let legacy_sum = checksum(legacy_result, &prepared_inputs, &legacy_ws);

            // Deploy-time prepared forms: the fused threaded loop, the
            // unfused threaded loop, and the metered enum loop — all three
            // must match the legacy walk bit-for-bit.
            let fused = PreparedProgram::prepare(&program, &target).unwrap_or_else(|e| {
                panic!("{} on {}: prepare failed: {e}", kernel.name, target.name)
            });
            let unfused =
                PreparedProgram::prepare_with(&program, &target, false).unwrap_or_else(|e| {
                    panic!(
                        "{} on {}: unfused prepare failed: {e}",
                        kernel.name, target.name
                    )
                });
            let paths: [(&str, &PreparedProgram, bool); 3] = [
                ("fused", &fused, false),
                ("unfused", &unfused, false),
                ("metered", &fused, true),
            ];
            for (path, prepared, metered) in paths {
                let mut prepared_ws = Workspace::new(1 << 16);
                let inputs = prepare(kernel.name, N, 99, &mut prepared_ws);
                let mut sim = PreparedSimulator::new(prepared);
                let result = if metered {
                    sim.run_metered(kernel.name, &inputs.args, prepared_ws.bytes_mut())
                } else {
                    sim.run(kernel.name, &inputs.args, prepared_ws.bytes_mut())
                }
                .unwrap_or_else(|e| panic!("{} on {} ({path}): {e}", kernel.name, target.name));

                assert_eq!(
                    result, legacy_result,
                    "{} on {}: {path} result diverged",
                    kernel.name, target.name
                );
                assert_eq!(
                    sim.stats(),
                    legacy_stats,
                    "{} on {}: {path} SimStats (cycles/spills/...) diverged",
                    kernel.name,
                    target.name
                );
                assert_eq!(
                    prepared_ws.bytes(),
                    legacy_ws.bytes(),
                    "{} on {}: {path} memory effects diverged",
                    kernel.name,
                    target.name
                );
                assert_eq!(checksum(result, &inputs, &prepared_ws), legacy_sum);
            }
        }
    }
}

/// The architectural face of a stats record: everything except the
/// timing-class counters (cycles, stalls, mispredicts, predicted).
fn arch(s: &SimStats) -> [u64; 7] {
    [
        s.instructions,
        s.loads,
        s.stores,
        s.spill_stores,
        s.spill_reloads,
        s.branches,
        s.vector_ops,
    ]
}

#[test]
fn timing_tiers_are_architecturally_bit_identical_on_every_kernel_and_target() {
    // Flat (the differential reference) vs the in-order pipeline on every
    // catalogue kernel x every preset: identical results, memory images and
    // spill counts; timing stats checked for internal consistency only. At
    // least one branchy kernel must actually exercise the hazard and
    // misprediction machinery, otherwise the pipelined tier proves nothing.
    let mut saw_stalls = false;
    let mut saw_mispredicts = false;
    for kernel in all_kernels() {
        let mut module =
            module_for(std::slice::from_ref(&kernel), kernel.name).expect("kernel compiles");
        optimize_module(&mut module, &OptOptions::full());
        for base in TargetDesc::presets() {
            let (program, _jit) = compile_module(&module, &base, &JitOptions::split())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, base.name));
            let pipe_target = base.clone().with_timing(TimingKind::InOrder);

            let flat = PreparedProgram::prepare(&program, &base).unwrap();
            let pipe = PreparedProgram::prepare(&program, &pipe_target).unwrap();

            let mut flat_ws = Workspace::new(1 << 16);
            let flat_inputs = prepare(kernel.name, N, 42, &mut flat_ws);
            let mut flat_sim = PreparedSimulator::new(&flat);
            let flat_result = flat_sim
                .run(kernel.name, &flat_inputs.args, flat_ws.bytes_mut())
                .unwrap_or_else(|e| panic!("{} on {} (flat): {e}", kernel.name, base.name));

            let mut pipe_ws = Workspace::new(1 << 16);
            let pipe_inputs = prepare(kernel.name, N, 42, &mut pipe_ws);
            let mut pipe_sim = PreparedSimulator::new(&pipe);
            let pipe_result = pipe_sim
                .run(kernel.name, &pipe_inputs.args, pipe_ws.bytes_mut())
                .unwrap_or_else(|e| panic!("{} on {} (pipelined): {e}", kernel.name, base.name));

            assert_eq!(
                flat_result, pipe_result,
                "{} on {}: result diverged across timing tiers",
                kernel.name, base.name
            );
            assert_eq!(
                flat_ws.bytes(),
                pipe_ws.bytes(),
                "{} on {}: memory image diverged across timing tiers",
                kernel.name,
                base.name
            );
            assert_eq!(
                checksum(flat_result, &flat_inputs, &flat_ws),
                checksum(pipe_result, &pipe_inputs, &pipe_ws),
                "{} on {}",
                kernel.name,
                base.name
            );
            let fs = flat_sim.stats();
            let ps = pipe_sim.stats();
            assert_eq!(
                arch(&fs),
                arch(&ps),
                "{} on {}: architectural counters moved across timing tiers",
                kernel.name,
                base.name
            );
            assert_eq!(
                (fs.stalls, fs.mispredicts, fs.predicted),
                (0, 0, 0),
                "{} on {}: flat timing must keep timing-class counters at zero",
                kernel.name,
                base.name
            );
            assert!(
                ps.cycles >= ps.instructions,
                "{} on {}: pipelined cycles {} < retired {}",
                kernel.name,
                base.name,
                ps.cycles,
                ps.instructions
            );
            assert!(
                ps.mispredicts <= ps.branches,
                "{} on {}: mispredicts {} > branches {}",
                kernel.name,
                base.name,
                ps.mispredicts,
                ps.branches
            );
            assert_eq!(
                ps.predicted + ps.mispredicts,
                ps.branches,
                "{} on {}: every branch must be predicted exactly once",
                kernel.name,
                base.name
            );

            // The legacy walk under pipelined timing: architecture must agree
            // with the prepared run (predictor state is per-run, and site ids
            // differ between paths, so timing-class stats are not compared).
            let mut legacy_ws = Workspace::new(1 << 16);
            let legacy_inputs = prepare(kernel.name, N, 42, &mut legacy_ws);
            let mut legacy_sim = Simulator::new(&program, &pipe_target);
            let legacy_result = legacy_sim
                .run_legacy(kernel.name, &legacy_inputs.args, legacy_ws.bytes_mut())
                .unwrap_or_else(|e| {
                    panic!("{} on {} (legacy pipelined): {e}", kernel.name, base.name)
                });
            assert_eq!(
                legacy_result, pipe_result,
                "{} on {}",
                kernel.name, base.name
            );
            assert_eq!(
                legacy_ws.bytes(),
                pipe_ws.bytes(),
                "{} on {}",
                kernel.name,
                base.name
            );
            let ls = legacy_sim.stats();
            assert_eq!(arch(&ls), arch(&ps), "{} on {}", kernel.name, base.name);
            assert!(ls.cycles >= ls.instructions);
            assert_eq!(ls.predicted + ls.mispredicts, ls.branches);

            saw_stalls |= ps.stalls > 0;
            saw_mispredicts |= ps.mispredicts > 0;
        }
    }
    assert!(
        saw_stalls,
        "no kernel on any target accrued a single hazard stall"
    );
    assert!(
        saw_mispredicts,
        "no kernel on any target mispredicted a single branch"
    );
}

#[test]
fn frame_pool_reuse_across_repeats_never_changes_results() {
    let kernel = &all_kernels()[0];
    let mut module =
        module_for(std::slice::from_ref(kernel), kernel.name).expect("kernel compiles");
    optimize_module(&mut module, &OptOptions::full());
    let target = TargetDesc::x86_sse();
    let (program, _jit) = compile_module(&module, &target, &JitOptions::split()).unwrap();
    let prepared = PreparedProgram::prepare(&program, &target).unwrap();

    // One long-lived simulator (warm pool) vs a fresh simulator per run.
    let mut warm = PreparedSimulator::new(&prepared);
    for run in 0..5 {
        let mut ws_a = Workspace::new(1 << 16);
        let mut ws_b = Workspace::new(1 << 16);
        let inputs_a = prepare(kernel.name, N, run, &mut ws_a);
        let inputs_b = prepare(kernel.name, N, run, &mut ws_b);
        let out_a = warm
            .run(kernel.name, &inputs_a.args, ws_a.bytes_mut())
            .unwrap();
        let mut cold = PreparedSimulator::new(&prepared);
        let out_b = cold
            .run(kernel.name, &inputs_b.args, ws_b.bytes_mut())
            .unwrap();
        assert_eq!(out_a, out_b, "seed {run}");
        assert_eq!(warm.stats(), cold.stats(), "seed {run}");
        assert_eq!(ws_a.bytes(), ws_b.bytes(), "seed {run}");
    }
}

#[test]
fn engine_pooled_sweep_path_matches_legacy_per_cell_execution() {
    // The path sweeps actually take (engine cache -> prepared program ->
    // worker frame pool) against a legacy walk of the same compiled program.
    let kernels = all_kernels();
    let mut module = module_for(&kernels, "pooled").expect("catalogue compiles");
    optimize_module(&mut module, &OptOptions::full());
    let options = JitOptions {
        regalloc: RegAllocMode::SplitAnnotations,
        allow_simd: true,
        fuse: true,
    };
    let engine = ExecutionEngine::new(module.clone());
    let mut pool = FramePool::new();
    let targets = TargetDesc::presets();
    for target in &targets {
        let (program, _jit) = compile_module(&module, target, &options).unwrap();
        for kernel in &kernels {
            let mut ws_a = Workspace::new(1 << 16);
            let mut ws_b = Workspace::new(1 << 16);
            let inputs_a = prepare(kernel.name, N, 7, &mut ws_a);
            let inputs_b = prepare(kernel.name, N, 7, &mut ws_b);
            let run = engine
                .run_pooled(
                    target,
                    &options,
                    kernel.name,
                    &inputs_a.args,
                    ws_a.bytes_mut(),
                    &mut pool,
                )
                .unwrap();
            let mut legacy = Simulator::new(&program, target);
            let legacy_result = legacy
                .run_legacy(kernel.name, &inputs_b.args, ws_b.bytes_mut())
                .unwrap();
            assert_eq!(
                run.result, legacy_result,
                "{} on {}",
                kernel.name, target.name
            );
            assert_eq!(
                run.stats,
                legacy.stats(),
                "{} on {}",
                kernel.name,
                target.name
            );
            assert_eq!(
                checksum(run.result, &inputs_a, &ws_a),
                checksum(legacy_result, &inputs_b, &ws_b),
                "{} on {}",
                kernel.name,
                target.name
            );
        }
    }
    // One compile (and one preparation) per catalogue target, however many
    // cells ran — derived from the catalogue, never a hardcoded count.
    assert_eq!(engine.stats().compiles, targets.len() as u64);
}
