//! Concurrency stress tests for the sharded, in-flight-deduplicated engine
//! cache and the parallel sweep layer.
//!
//! The properties pinned down here are the ones the paper's amortization
//! story depends on at scale:
//!
//! * **exactly one compile per (target, options) pair**, however many threads
//!   race on a cold key in whatever arrival order — duplicated compiles would
//!   silently double the online cost the experiments report;
//! * **hits account for every other lookup** (`compiles + hits == lookups`),
//!   so the cache counters stay trustworthy under contention;
//! * **bit-identical results**: a kernel's checksum does not depend on which
//!   thread ran it, when, or what else was in flight.

use rand::{rngs::StdRng, Rng, SeedableRng};
use splitc::{checksum, prepare, ExecutionEngine, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::TargetDesc;
use splitc_workloads::{module_for, table1_kernels};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

const N: usize = 64;
const THREADS: usize = 8;

/// All three online configurations an engine can be asked for.
fn configs() -> Vec<JitOptions> {
    vec![
        JitOptions::split(),
        JitOptions::online_greedy(),
        JitOptions::online_analyze(),
    ]
}

/// Deploy the full Table 1 kernel catalogue into one engine.
fn deploy() -> ExecutionEngine {
    let kernels = table1_kernels();
    let mut module = module_for(&kernels, "stress").expect("catalogue compiles");
    optimize_module(&mut module, &OptOptions::full());
    ExecutionEngine::new(module)
}

/// One cell of the stress matrix: kernel index, target index, config index.
type Job = (usize, usize, usize);

/// Run one job against `engine`, returning the checksum of its results.
fn run_job(engine: &ExecutionEngine, ws: &mut Workspace, job: Job) -> u64 {
    let kernels = table1_kernels();
    let targets = TargetDesc::presets();
    let configs = configs();
    let (ki, ti, ci) = job;
    let kernel = &kernels[ki];
    ws.reset();
    let prepared = prepare(kernel.name, N, 0xc0ffee + ki as u64, ws);
    let run = engine
        .run(
            &targets[ti],
            &configs[ci],
            kernel.name,
            &prepared.args,
            ws.bytes_mut(),
        )
        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, targets[ti].name));
    checksum(run.result, &prepared, ws)
}

/// In-place Fisher–Yates shuffle with a per-thread seeded generator, so each
/// thread hammers the engine in its own randomized arrival order.
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0usize..i + 1);
        items.swap(i, j);
    }
}

#[test]
fn eight_racing_threads_compile_exactly_once_per_pair() {
    let kernels = table1_kernels();
    let targets = TargetDesc::presets();
    let configs = configs();

    let mut jobs: Vec<Job> = Vec::new();
    for ki in 0..kernels.len() {
        for ti in 0..targets.len() {
            for ci in 0..configs.len() {
                jobs.push((ki, ti, ci));
            }
        }
    }

    // Single-threaded reference sweep on a fresh engine.
    let reference_engine = deploy();
    let mut reference: HashMap<Job, u64> = HashMap::new();
    let mut ws = Workspace::sized_for(N);
    for &job in &jobs {
        reference.insert(job, run_job(&reference_engine, &mut ws, job));
    }

    // Eight threads hammer one shared engine, each in its own shuffled order,
    // released simultaneously so cold keys actually race.
    let engine = Arc::new(deploy());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            let mut thread_jobs = jobs.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5eed + thread as u64);
                shuffle(&mut thread_jobs, &mut rng);
                let mut ws = Workspace::sized_for(N);
                barrier.wait();
                for job in thread_jobs {
                    let sum = run_job(&engine, &mut ws, job);
                    assert_eq!(
                        sum, reference[&job],
                        "job {job:?} diverged from the single-threaded run"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    // Exactly one compile per (target, config) pair — kernels share the
    // module, so they never multiply compilations; racing threads dedup.
    let expected_compiles = (targets.len() * configs.len()) as u64;
    let stats = engine.stats();
    assert_eq!(
        stats.compiles, expected_compiles,
        "racing cold lookups must deduplicate to exactly T x C compiles"
    );
    assert_eq!(
        stats.lookups(),
        (THREADS * jobs.len()) as u64,
        "every run performs exactly one cache lookup"
    );
    assert_eq!(
        stats.hits,
        stats.lookups() - stats.compiles,
        "hits must account for every non-compiling lookup"
    );
    assert_eq!(stats.evictions, 0, "unbounded cache never evicts");
    assert_eq!(engine.compiled_variants(), expected_compiles as usize);

    // The reference sweep compiled the same set of pairs, once each, too.
    assert_eq!(reference_engine.stats().compiles, expected_compiles);
}

#[test]
fn simultaneous_cold_start_on_one_key_compiles_once() {
    // The sharpest version of the race: every thread asks for the *same*
    // cold (target, options) pair at the same instant.
    let engine = Arc::new(deploy());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                engine
                    .program_for(&TargetDesc::x86_sse(), &JitOptions::split())
                    .expect("compiles")
            })
        })
        .collect();
    let programs: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect();
    assert_eq!(engine.stats().compiles, 1, "one winner compiles");
    assert_eq!(engine.stats().hits, (THREADS - 1) as u64, "the rest wait");
    for p in &programs[1..] {
        assert!(
            Arc::ptr_eq(&programs[0], p),
            "all threads must share the winner's Arc'd program"
        );
    }
}

#[test]
fn parallel_sweep_under_lru_pressure_stays_correct() {
    // A bounded cache under 8-thread load: eviction churn must never change
    // results, and the counters must stay consistent.
    let engine = Arc::new(deploy());
    engine.set_cache_capacity(2);
    let targets = TargetDesc::presets();

    let reference_engine = deploy();
    let mut ws = Workspace::sized_for(N);
    let reference: Vec<u64> = (0..targets.len())
        .map(|ti| run_job(&reference_engine, &mut ws, (0, ti, 0)))
        .collect();

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|thread| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(thread as u64);
                let mut order: Vec<usize> = (0..reference.len()).collect();
                shuffle(&mut order, &mut rng);
                let mut ws = Workspace::sized_for(N);
                barrier.wait();
                for _ in 0..3 {
                    for &ti in &order {
                        let sum = run_job(&engine, &mut ws, (0, ti, 0));
                        assert_eq!(sum, reference[ti], "target {ti} diverged under eviction");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    let stats = engine.stats();
    assert_eq!(stats.compiles + stats.hits, stats.lookups());
    assert!(
        stats.evictions > 0,
        "a 2-entry cache swept over the whole target catalogue must evict"
    );
    assert!(engine.compiled_variants() <= 2, "the bound holds at rest");
}

#[test]
fn stats_snapshots_stay_consistent_while_workers_churn_the_cache() {
    // The serving layer reads engine stats from a live worker pool; this
    // pins the guarantees those reads rely on. A bounded cache churns under
    // racing threads while an observer hammers `snapshot()`: every snapshot
    // — whatever instant it lands on — must be internally consistent
    // (resident entries == compiles - evictions, no torn lookups) and the
    // sequence must be pointwise monotonic. The independently-read atomic
    // counters this replaced could skew exactly here.
    let engine = Arc::new(deploy());
    engine.set_cache_capacity(2);
    let targets = TargetDesc::presets();
    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    let workers: Vec<_> = (0..4)
        .map(|thread| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xca5e + thread as u64);
                let targets = TargetDesc::presets();
                let mut order: Vec<usize> = (0..targets.len()).collect();
                for _ in 0..6 {
                    shuffle(&mut order, &mut rng);
                    for &ti in &order {
                        engine
                            .program_for(&targets[ti], &JitOptions::split())
                            .expect("compiles");
                    }
                }
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            })
        })
        .collect();

    let mut prev = engine.snapshot();
    let mut observed = 0usize;
    while done.load(std::sync::atomic::Ordering::Relaxed) < 4 {
        let snap = engine.snapshot();
        assert_eq!(
            snap.live,
            (snap.stats.compiles + snap.stats.disk_hits - snap.stats.evictions) as usize,
            "a snapshot tore a compile apart from its insert/evict"
        );
        assert_eq!(
            snap.stats.lookups(),
            snap.stats.compiles + snap.stats.hits + snap.stats.disk_hits
        );
        assert!(
            snap.stats.compiles >= prev.stats.compiles,
            "compiles went backwards"
        );
        assert!(snap.stats.hits >= prev.stats.hits, "hits went backwards");
        assert!(
            snap.stats.evictions >= prev.stats.evictions,
            "evictions went backwards"
        );
        assert!(snap.online_work >= prev.online_work, "work went backwards");
        prev = snap;
        observed += 1;
    }
    for w in workers {
        w.join().expect("churn thread panicked");
    }
    assert!(observed > 0, "the observer actually raced the workers");
    let quiescent = engine.snapshot();
    assert_eq!(
        quiescent.live,
        (quiescent.stats.compiles + quiescent.stats.disk_hits - quiescent.stats.evictions) as usize
    );
    assert!(quiescent.live <= 2, "the LRU bound holds at rest");
    assert_eq!(
        quiescent.stats.lookups(),
        4 * 6 * targets.len() as u64,
        "every lookup was counted exactly once"
    );
}
