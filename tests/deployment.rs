//! End-to-end deployment tests: encode → ship → decode → verify → deploy →
//! JIT (once) → run, across the whole kernel suite and every preset target,
//! exercising the same path a real device would take — all online compilation
//! goes through the shared, cached `ExecutionEngine`.

use splitc::{checksum, prepare, run_on_target, ExecutionEngine, Workspace};
use splitc_jit::JitOptions;
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{choose_core, Executor, Platform};
use splitc_targets::{SimStats, TargetDesc};
use splitc_vbc::{decode_module, encode_module, keys, verify_module};
use splitc_workloads::{all_kernels, full_module, table1_kernels};

#[test]
fn the_full_suite_survives_the_wire_format_and_compiles_everywhere() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    verify_module(&module).expect("offline output verifies");

    // Ship.
    let wire = encode_module(&module);
    let received = decode_module(&wire).expect("decodes");
    assert_eq!(received, module, "the wire format is lossless");
    assert_eq!(
        received.annotations.get_bool(keys::OFFLINE_OPTIMIZED),
        Some(true)
    );

    // Device-side: verify, deploy once, compile for every machine.
    verify_module(&received).expect("verifies on the device");
    let functions = received.functions().len();
    let engine = ExecutionEngine::new(received);
    for target in TargetDesc::presets() {
        let compiled = engine
            .program_for(&target, &JitOptions::split())
            .unwrap_or_else(|e| panic!("{}: {e}", target.name));
        assert_eq!(compiled.program.functions.len(), functions);
        assert!(compiled.jit.annotations_used, "{}", target.name);
    }
    assert_eq!(engine.stats().compiles, TargetDesc::presets().len() as u64);
}

#[test]
fn stripping_annotations_degrades_gracefully() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let mut stripped_module = module.clone();
    stripped_module.strip_annotations();

    // Still compiles and runs, just without the split-compilation benefits.
    let target = TargetDesc::x86_sse();
    let annotated = ExecutionEngine::new(module);
    let stripped = ExecutionEngine::new(stripped_module);
    let with = annotated
        .jit_stats(&target, &JitOptions::split())
        .expect("annotated");
    let without = stripped
        .jit_stats(&target, &JitOptions::split())
        .expect("stripped");
    assert!(with.annotations_used);
    assert!(!without.annotations_used);

    let mut ws = Workspace::new(1 << 16);
    let prepared = prepare("dscal_f32", 100, 5, &mut ws);
    let run = stripped
        .run(
            &target,
            &JitOptions::split(),
            "dscal_f32",
            &prepared.args,
            ws.bytes_mut(),
        )
        .expect("stripped module still runs");
    assert!(run.stats.cycles > 0);
}

#[test]
fn the_executor_reuses_compiled_code_across_cores_of_the_same_type() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let platform = Platform::cell_blade(4);
    let exec = Executor::deploy(module);
    for core in &platform.cores {
        let stats = exec.jit_stats(core).expect("compiles for the core");
        assert!(stats.functions > 0);
    }
    // 1 PPE type + 1 SPU type, not 5 separate compilations.
    assert_eq!(exec.compiled_variants(), 2);
    assert_eq!(exec.engine().stats().compiles, 2);
    assert_eq!(
        exec.engine().stats().hits,
        3,
        "three SPUs reused the first SPU's code"
    );
}

/// The tentpole guarantee: a table1-style sweep over K kernels × T targets ×
/// R repeats × C JIT configurations performs exactly T × C online
/// compilations — kernels and repeats ride the cache — and repeated runs are
/// bit-identical to the first.
#[test]
fn a_full_sweep_compiles_once_per_target_and_jit_config() {
    let kernels = table1_kernels();
    let mut module = splitc_workloads::module_for(&kernels, "sweep").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let engine = ExecutionEngine::new(module);

    let targets = TargetDesc::table1_targets();
    let jit_configs = [JitOptions::split(), JitOptions::online_greedy()];
    const REPEATS: usize = 3;
    const N: usize = 96;

    let mut first: Vec<(u64, SimStats)> = Vec::new();
    let mut runs = 0u64;
    for repeat in 0..REPEATS {
        let mut slot = 0usize;
        for kernel in &kernels {
            for target in &targets {
                for jit in &jit_configs {
                    let mut ws = Workspace::new(1 << 16);
                    let prepared = prepare(kernel.name, N, 7, &mut ws);
                    let run = engine
                        .run(target, jit, kernel.name, &prepared.args, ws.bytes_mut())
                        .unwrap_or_else(|e| panic!("{} on {}: {e}", kernel.name, target.name));
                    let sum = checksum(run.result, &prepared, &ws);
                    runs += 1;
                    if repeat == 0 {
                        first.push((sum, run.stats));
                    } else {
                        let (first_sum, first_stats) = first[slot];
                        assert_eq!(
                            sum, first_sum,
                            "{} on {} changed its result on repeat {repeat}",
                            kernel.name, target.name
                        );
                        assert_eq!(
                            run.stats, first_stats,
                            "{} on {} changed its SimStats on repeat {repeat}",
                            kernel.name, target.name
                        );
                    }
                    slot += 1;
                }
            }
        }
    }

    let stats = engine.stats();
    assert_eq!(
        stats.compiles,
        (targets.len() * jit_configs.len()) as u64,
        "exactly one compilation per (target, jit-config) pair"
    );
    assert_eq!(stats.lookups(), runs);
    assert_eq!(stats.hits, runs - stats.compiles);
}

/// Cache transparency: on every built-in target, a run served from the cache
/// is bit-identical — result checksum and SimStats — to a run on a freshly
/// deployed engine that has never compiled anything.
#[test]
fn cached_and_fresh_compilations_are_bit_identical_on_every_target() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let shared = ExecutionEngine::new(module.clone());
    const N: usize = 64;

    for target in TargetDesc::presets() {
        let measure = |engine: &ExecutionEngine| -> (u64, SimStats) {
            let mut ws = Workspace::new(1 << 16);
            let prepared = prepare("saxpy_f32", N, 11, &mut ws);
            let run = engine
                .run(
                    &target,
                    &JitOptions::split(),
                    "saxpy_f32",
                    &prepared.args,
                    ws.bytes_mut(),
                )
                .unwrap_or_else(|e| panic!("{}: {e}", target.name));
            (checksum(run.result, &prepared, &ws), run.stats)
        };
        let cold = measure(&shared); // first use of this target: compiles
        let warm = measure(&shared); // second use: served from the cache
        let fresh = measure(&ExecutionEngine::new(module.clone()));
        assert_eq!(
            cold, warm,
            "{}: cache hit changed the execution",
            target.name
        );
        assert_eq!(
            cold, fresh,
            "{}: fresh engine disagrees with cached run",
            target.name
        );
    }
    // Every second (warm) run per target was a hit on the shared engine.
    assert_eq!(shared.stats().compiles, TargetDesc::presets().len() as u64);
    assert_eq!(shared.stats().hits, TargetDesc::presets().len() as u64);
}

#[test]
fn one_shot_run_on_target_agrees_with_the_engine() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let target = TargetDesc::arm_neon();

    let mut ws = Workspace::new(1 << 16);
    let prepared = prepare("dot_f32", 80, 3, &mut ws);
    let one_shot = run_on_target(
        &module,
        &target,
        &JitOptions::split(),
        "dot_f32",
        &prepared.args,
        ws.bytes_mut(),
    )
    .expect("one-shot run works");

    let engine = ExecutionEngine::new(module);
    let mut ws2 = Workspace::new(1 << 16);
    let prepared2 = prepare("dot_f32", 80, 3, &mut ws2);
    let cached = engine
        .run(
            &target,
            &JitOptions::split(),
            "dot_f32",
            &prepared2.args,
            ws2.bytes_mut(),
        )
        .expect("engine run works");
    assert_eq!(
        one_shot, cached,
        "the convenience wrapper must match the engine"
    );
}

#[test]
fn kernel_traits_send_every_catalogue_kernel_to_a_sensible_core() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let phone = Platform::phone();
    for kernel in all_kernels() {
        let traits = module
            .function(kernel.name)
            .expect("kernel in module")
            .annotations
            .kernel_traits()
            .expect("offline step attaches traits");
        let core = choose_core(&traits, &phone);
        if traits.uses_fp || traits.uses_vector {
            assert_eq!(
                core.name, "arm",
                "{} uses floating point or vectors and must avoid the DSP",
                kernel.name
            );
        }
    }
}
