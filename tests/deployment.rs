//! End-to-end deployment tests: encode → ship → decode → verify → JIT → run,
//! across the whole kernel suite and every preset target, exercising the same
//! path a real device would take.

use splitc::{prepare, run_on_target, Workspace};
use splitc_jit::{compile_module, JitOptions};
use splitc_opt::{optimize_module, OptOptions};
use splitc_runtime::{choose_core, Executor, Platform};
use splitc_targets::TargetDesc;
use splitc_vbc::{decode_module, encode_module, keys, verify_module};
use splitc_workloads::{all_kernels, full_module};

#[test]
fn the_full_suite_survives_the_wire_format_and_compiles_everywhere() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    verify_module(&module).expect("offline output verifies");

    // Ship.
    let wire = encode_module(&module);
    let received = decode_module(&wire).expect("decodes");
    assert_eq!(received, module, "the wire format is lossless");
    assert_eq!(received.annotations.get_bool(keys::OFFLINE_OPTIMIZED), Some(true));

    // Device-side: verify then compile for every machine.
    verify_module(&received).expect("verifies on the device");
    for target in TargetDesc::presets() {
        let (program, stats) = compile_module(&received, &target, &JitOptions::split())
            .unwrap_or_else(|e| panic!("{}: {e}", target.name));
        assert_eq!(program.functions.len(), received.functions().len());
        assert!(stats.annotations_used, "{}", target.name);
    }
}

#[test]
fn stripping_annotations_degrades_gracefully() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let mut stripped = module.clone();
    stripped.strip_annotations();

    // Still compiles and runs, just without the split-compilation benefits.
    let target = TargetDesc::x86_sse();
    let (_, with) = compile_module(&module, &target, &JitOptions::split()).expect("annotated");
    let (_, without) = compile_module(&stripped, &target, &JitOptions::split()).expect("stripped");
    assert!(with.annotations_used);
    assert!(!without.annotations_used);

    let mut ws = Workspace::new(1 << 16);
    let prepared = prepare("dscal_f32", 100, 5, &mut ws);
    let run = run_on_target(
        &stripped,
        &target,
        &JitOptions::split(),
        "dscal_f32",
        &prepared.args,
        ws.bytes_mut(),
    )
    .expect("stripped module still runs");
    assert!(run.stats.cycles > 0);
}

#[test]
fn the_executor_reuses_compiled_code_across_cores_of_the_same_type() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let platform = Platform::cell_blade(4);
    let mut exec = Executor::deploy(module);
    for core in &platform.cores {
        let stats = exec.jit_stats(core).expect("compiles for the core");
        assert!(stats.functions > 0);
    }
    // 1 PPE type + 1 SPU type, not 5 separate compilations.
    assert_eq!(exec.compiled_variants(), 2);
}

#[test]
fn kernel_traits_send_every_catalogue_kernel_to_a_sensible_core() {
    let mut module = full_module("suite").expect("suite compiles");
    optimize_module(&mut module, &OptOptions::full());
    let phone = Platform::phone();
    for kernel in all_kernels() {
        let traits = module
            .function(kernel.name)
            .expect("kernel in module")
            .annotations
            .kernel_traits()
            .expect("offline step attaches traits");
        let core = choose_core(&traits, &phone);
        if traits.uses_fp || traits.uses_vector {
            assert_eq!(
                core.name, "arm",
                "{} uses floating point or vectors and must avoid the DSP",
                kernel.name
            );
        }
    }
}
