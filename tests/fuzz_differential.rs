//! Differential fuzzing: deterministic, seeded random mini-C programs run
//! through the reference interpreter and every simulated target under every
//! register-allocation mode — all of them must agree bit-for-bit.
//!
//! `tests/differential.rs` pins the fixed kernel catalogue; this harness goes
//! beyond it by *generating* small programs (scalar arithmetic, bounded
//! loops, array reads/writes, conditionals, while loops) so the bytecode
//! semantics, the offline optimizer and every online compiler configuration
//! are exercised on shapes nobody hand-picked. Every program is derived from
//! a seed; on a failure the offending seed *and the full program source* are
//! printed, so a divergence reproduces with a one-line test.
//!
//! The arithmetic generator tracks a static bound on every integer
//! expression's magnitude and keeps accumulators far below `i32::MAX`, so
//! those programs are overflow-free by construction — any divergence is a
//! real compiler or simulator bug, not an arithmetic-semantics edge case.
//!
//! The *shift* generator ([`gen_shift_program`]) deliberately drops that
//! discipline: wrapping arithmetic and modulo-64-masked shift counts are
//! fully defined bytecode semantics (see `BinOp::Shl`), so shift-heavy
//! programs with out-of-range and negative counts must still agree
//! bit-for-bit across every path.

use rand::{rngs::StdRng, Rng, SeedableRng};
use splitc::serve::{Request, ServeModule, Server, ServerConfig};
use splitc::splitc_minic::compile_source;
use splitc::{run_on_target, Workspace};
use splitc_jit::{compile_module, JitOptions, RegAllocMode};
use splitc_opt::{optimize_module, OptOptions};
use splitc_targets::{
    MachineValue, PreparedProgram, PreparedSimulator, Simulator, TargetDesc, TimingKind,
};
use splitc_vbc::{Interpreter, Memory, Value};

/// Elements per generated kernel; deliberately not a multiple of a lane count.
const N: usize = 97;

/// All register-allocation modes of the online compiler.
const MODES: [RegAllocMode; 3] = [
    RegAllocMode::SplitAnnotations,
    RegAllocMode::OnlineGreedy,
    RegAllocMode::OnlineAnalyze,
];

/// Bound on any loop-invariant or per-element i32 value the generator emits;
/// `N * EXPR_BOUND` stays two orders of magnitude below `i32::MAX`.
const EXPR_BOUND: u64 = 1_000_000;

/// A leaf the expression generator may reference: name and magnitude bound.
type Leaf = (String, u64);

struct ExprGen {
    rng: StdRng,
}

impl ExprGen {
    fn new(seed: u64) -> Self {
        ExprGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.gen_range(0usize..items.len())]
    }

    /// A random i32 expression over `leaves`, with its static magnitude
    /// bound. Expressions whose bound would exceed [`EXPR_BOUND`] collapse to
    /// one operand, so no generated program can overflow.
    fn int_expr(&mut self, leaves: &[Leaf], depth: u32) -> (String, u64) {
        if depth == 0 || self.rng.gen_range(0u32..4) == 0 {
            if self.rng.gen_range(0u32..3) == 0 {
                let c = self.rng.gen_range(0i64..10);
                (c.to_string(), c.unsigned_abs())
            } else {
                self.pick(leaves).clone()
            }
        } else {
            let (a, ba) = self.int_expr(leaves, depth - 1);
            let (b, bb) = self.int_expr(leaves, depth - 1);
            let (op, bound) = match self.rng.gen_range(0u32..5) {
                0 | 1 => ("+", ba + bb),
                2 | 3 => ("-", ba + bb),
                _ => ("*", ba.saturating_mul(bb)),
            };
            if bound > EXPR_BOUND {
                (a, ba)
            } else {
                (format!("({a} {op} {b})"), bound)
            }
        }
    }

    /// A random f32 expression over `leaves` (magnitudes stay tiny: leaf
    /// values are below 8 and the depth is at most 3).
    fn float_expr(&mut self, leaves: &[String], depth: u32) -> String {
        if depth == 0 || self.rng.gen_range(0u32..4) == 0 {
            if self.rng.gen_range(0u32..3) == 0 {
                format!("{:.4}", self.rng.gen_range(0.0f32..4.0))
            } else {
                self.pick(leaves).clone()
            }
        } else {
            let a = self.float_expr(leaves, depth - 1);
            let b = self.float_expr(leaves, depth - 1);
            let op = ["+", "-", "*"][self.rng.gen_range(0usize..3)];
            format!("({a} {op} {b})")
        }
    }

    /// A comparison between two bounded i32 expressions.
    fn int_cond(&mut self, leaves: &[Leaf]) -> String {
        let (a, _) = self.int_expr(leaves, 1);
        let (b, _) = self.int_expr(leaves, 1);
        let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0usize..6)];
        format!("({a} {op} {b})")
    }
}

/// Generate one random i32 kernel `fn fuzz(n: i32, x: *i32, y: *i32) -> i32`:
/// loop-invariant scalars, an element-wise map over `x` into `y` (optionally
/// conditional, optionally reading `x` back-to-front), a reduction over `y`,
/// and sometimes a trailing `while` countdown.
fn gen_int_program(seed: u64) -> String {
    let mut g = ExprGen::new(seed);
    let mut body = String::new();
    let mut scalars: Vec<Leaf> = Vec::new();
    for s in 0..g.rng.gen_range(1usize..4) {
        let (init, bound) = {
            let consts: Vec<Leaf> = scalars.clone();
            if consts.is_empty() {
                let c = g.rng.gen_range(0i64..10);
                (c.to_string(), c.unsigned_abs())
            } else {
                g.int_expr(&consts, 2)
            }
        };
        body.push_str(&format!("    let s{s}: i32 = {init};\n"));
        scalars.push((format!("s{s}"), bound.max(9)));
    }

    // Element-wise map: x (and optionally its mirror) into y.
    let reversed = g.rng.gen_range(0u32..3) == 0;
    let mut leaves: Vec<Leaf> = scalars.clone();
    leaves.push(("v".into(), 100));
    leaves.push(("i".into(), N as u64));
    if reversed {
        leaves.push(("w".into(), 100));
    }
    let (map, _) = g.int_expr(&leaves, 3);
    body.push_str("    for (let i: i32 = 0; i < n; i = i + 1) {\n");
    body.push_str("        let v: i32 = x[i];\n");
    if reversed {
        body.push_str("        let j: i32 = n - 1 - i;\n");
        body.push_str("        let w: i32 = x[j];\n");
    }
    body.push_str(&format!("        y[i] = {map};\n"));
    if g.rng.gen_range(0u32..2) == 0 {
        let cond = g.int_cond(&leaves);
        let bump = g.rng.gen_range(1i64..8);
        if g.rng.gen_range(0u32..2) == 0 {
            body.push_str(&format!("        if {cond} {{ y[i] = y[i] + {bump}; }}\n"));
        } else {
            body.push_str(&format!(
                "        if {cond} {{ y[i] = y[i] + {bump}; }} else {{ y[i] = y[i] - {bump}; }}\n"
            ));
        }
    }
    body.push_str("    }\n");

    // Reduction over y: plain sum or a conditional count.
    body.push_str("    let acc: i32 = 0;\n");
    body.push_str("    for (let k: i32 = 0; k < n; k = k + 1) {\n");
    if g.rng.gen_range(0u32..3) == 0 {
        let threshold = g.rng.gen_range(0i64..10);
        body.push_str(&format!(
            "        if (y[k] > {threshold}) {{ acc = acc + 1; }} else {{ acc = acc - 1; }}\n"
        ));
    } else {
        body.push_str("        acc = acc + y[k];\n");
    }
    body.push_str("    }\n");

    // Sometimes a while-loop countdown rides along.
    if g.rng.gen_range(0u32..2) == 0 {
        let start = g.rng.gen_range(1i64..16);
        body.push_str(&format!("    let t: i32 = {start};\n"));
        body.push_str("    while (t > 0) { acc = acc + t; t = t - 1; }\n");
    }
    body.push_str("    return acc;\n");
    format!("fn fuzz(n: i32, x: *i32, y: *i32) -> i32 {{\n{body}}}\n")
}

/// Extreme shift counts: in range, at the i32 width boundary, past the
/// 64-bit register width (where the modulo-64 mask wraps them), and negative
/// (which mask to `count & 63`).
const SHIFT_COUNTS: [i64; 12] = [0, 1, 5, 31, 32, 33, 63, 64, 65, 127, -1, -63];

/// Render a count as mini-C source; negatives become `(0 - k)` so the
/// generated programs need no unary minus.
fn count_lit(c: i64) -> String {
    if c < 0 {
        format!("(0 - {})", -c)
    } else {
        c.to_string()
    }
}

/// Generate one shift-heavy i32 kernel `fn fuzz(n: i32, x: *i32, y: *i32) ->
/// i32`. Unlike [`gen_int_program`] this deliberately abandons the
/// overflow-free discipline: every operation in the bytecode wraps
/// deterministically, so shift results of any magnitude must still agree
/// bit-for-bit across the interpreter, both simulator walks and every
/// register-allocation mode — out-of-range counts included. Counts come from
/// [`SHIFT_COUNTS`] (constants, which const-folding may evaluate offline) and
/// from runtime values (`v`, `i` and expressions over them), which only the
/// execution paths see.
fn gen_shift_program(seed: u64) -> String {
    let mut g = ExprGen::new(seed);
    let mut body = String::new();

    // A few loop-invariant scalars, some holding folded constant shifts so
    // the offline constant folder evaluates extreme counts too.
    let mut leaves: Vec<String> = Vec::new();
    for s in 0..g.rng.gen_range(1usize..3) {
        let base = g.rng.gen_range(1i64..200);
        let count = count_lit(*g.pick(&SHIFT_COUNTS));
        let op = *g.pick(&["<<", ">>"]);
        body.push_str(&format!("    let s{s}: i32 = ({base} {op} {count});\n"));
        leaves.push(format!("s{s}"));
    }

    // The element-wise map: a tree of shifts and wrapping arithmetic over the
    // runtime value, the index and the invariant scalars.
    fn shift_expr(g: &mut ExprGen, leaves: &[String], depth: u32) -> String {
        if depth == 0 || g.rng.gen_range(0u32..5) == 0 {
            return g.pick(leaves).clone();
        }
        let a = shift_expr(g, leaves, depth - 1);
        match g.rng.gen_range(0u32..8) {
            // Constant extreme counts.
            0 | 1 => {
                let c = count_lit(*g.pick(&SHIFT_COUNTS));
                let op = *g.pick(&["<<", ">>"]);
                format!("({a} {op} {c})")
            }
            // Runtime counts: raw (any i32, masked mod 64) or pre-masked.
            2 => {
                let b = shift_expr(g, leaves, depth - 1);
                let op = *g.pick(&["<<", ">>"]);
                format!("({a} {op} {b})")
            }
            3 => {
                let b = shift_expr(g, leaves, depth - 1);
                let op = *g.pick(&["<<", ">>"]);
                format!("({a} {op} ({b} & 63))")
            }
            // Wrapping glue between the shifts.
            _ => {
                let b = shift_expr(g, leaves, depth - 1);
                let op = *g.pick(&["+", "-", "*", "^", "&", "|"]);
                format!("({a} {op} {b})")
            }
        }
    }

    let mut map_leaves = leaves.clone();
    map_leaves.push("v".into());
    map_leaves.push("i".into());
    let map = shift_expr(&mut g, &map_leaves, 3);
    body.push_str("    for (let i: i32 = 0; i < n; i = i + 1) {\n");
    body.push_str("        let v: i32 = x[i];\n");
    body.push_str(&format!("        y[i] = {map};\n"));
    body.push_str("    }\n");

    // Wrapping reduction so the return value covers the whole output.
    body.push_str("    let acc: i32 = 0;\n");
    body.push_str("    for (let k: i32 = 0; k < n; k = k + 1) {\n");
    body.push_str("        acc = (acc * 31) + y[k];\n");
    body.push_str("    }\n");
    body.push_str("    return acc;\n");
    format!("fn fuzz(n: i32, x: *i32, y: *i32) -> i32 {{\n{body}}}\n")
}

/// Generate one branch-dense i32 kernel `fn fuzz(n: i32, x: *i32, y: *i32)
/// -> i32`: chains of conditionals re-testing each element, stepped `while`
/// loops with compare exits, and a conditional reduction. Nearly every basic
/// block ends in a compare+branch and every loop carries an
/// induction-variable step, so the prepare-time macro-op fusion pass
/// (cmp+branch, indvar) fires constantly — the adversarial surface for the
/// threaded dispatcher. Bounds follow [`gen_int_program`]'s discipline:
/// per-element results stay within ±32 and the reduction within ±2·N, so the
/// programs are overflow-free by construction.
fn gen_branch_program(seed: u64) -> String {
    let mut g = ExprGen::new(seed ^ 0x00b4_a9c4);
    let mut body = String::new();
    let mut scalars: Vec<Leaf> = Vec::new();
    for s in 0..g.rng.gen_range(2usize..4) {
        let c = g.rng.gen_range(0i64..10);
        body.push_str(&format!("    let s{s}: i32 = {c};\n"));
        scalars.push((format!("s{s}"), 9));
    }

    // Element-wise map: a chain of conditionals, each re-testing the current
    // element — back-to-back compare+branch blocks.
    let mut leaves: Vec<Leaf> = scalars.clone();
    leaves.push(("v".into(), 100));
    leaves.push(("i".into(), N as u64));
    body.push_str("    for (let i: i32 = 0; i < n; i = i + 1) {\n");
    body.push_str("        let v: i32 = x[i];\n");
    body.push_str("        let r: i32 = 0;\n");
    for _ in 0..g.rng.gen_range(2u32..5) {
        let cond = g.int_cond(&leaves);
        let bump = g.rng.gen_range(1i64..8);
        if g.rng.gen_range(0u32..2) == 0 {
            body.push_str(&format!("        if {cond} {{ r = r + {bump}; }}\n"));
        } else {
            body.push_str(&format!(
                "        if {cond} {{ r = r + {bump}; }} else {{ r = r - {bump}; }}\n"
            ));
        }
    }
    body.push_str("        y[i] = r;\n");
    body.push_str("    }\n");

    // Stepped while loops: induction variable plus compare exit (the indvar
    // fusion shape) with a data-dependent branch in the body.
    body.push_str("    let acc: i32 = 0;\n");
    for l in 0..g.rng.gen_range(1u32..3) {
        let step = g.rng.gen_range(1i64..4);
        let threshold = g.rng.gen_range(0i64..10);
        body.push_str(&format!("    let t{l}: i32 = 0;\n"));
        body.push_str(&format!("    while (t{l} < n) {{\n"));
        body.push_str(&format!(
            "        if (y[t{l}] > {threshold}) {{ acc = acc + 1; }} else {{ acc = acc - 1; }}\n"
        ));
        body.push_str(&format!("        t{l} = t{l} + {step};\n"));
        body.push_str("    }\n");
    }
    body.push_str("    return acc;\n");
    format!("fn fuzz(n: i32, x: *i32, y: *i32) -> i32 {{\n{body}}}\n")
}

/// Generate one random f32 kernel `fn fuzzf(n: i32, x: *f32, y: *f32)`: a
/// purely element-wise map (no float reductions, whose vectorization would
/// legitimately reassociate), comparing output bytes exactly.
fn gen_float_program(seed: u64) -> String {
    let mut g = ExprGen::new(seed);
    let mut body = String::new();
    let mut leaves: Vec<String> = Vec::new();
    for s in 0..g.rng.gen_range(1usize..4) {
        let c = format!("{:.4}", g.rng.gen_range(0.0f32..4.0));
        body.push_str(&format!("    let c{s}: f32 = {c};\n"));
        leaves.push(format!("c{s}"));
    }
    leaves.push("v".into());
    let map = g.float_expr(&leaves, 3);
    body.push_str("    for (let i: i32 = 0; i < n; i = i + 1) {\n");
    body.push_str("        let v: f32 = x[i];\n");
    body.push_str(&format!("        y[i] = {map};\n"));
    body.push_str("    }\n");
    format!("fn fuzzf(n: i32, x: *f32, y: *f32) {{\n{body}}}\n")
}

/// Run `source` through the interpreter and every target × mode — **via
/// every execution path**: the legacy `MProgram` block walk, the fused
/// threaded-dispatch loop and the unfused threaded-dispatch loop — comparing
/// the returned value and the output array bytes exactly, and all paths'
/// `SimStats` against each other (so macro-op fusion is pinned to be
/// observationally invisible). `float` selects the f32 input layout. Panics
/// with the program source on any divergence.
fn check_program(source: &str, name: &str, seed: u64, float: bool) {
    let mut module = compile_source(source, "fuzz").unwrap_or_else(|e| {
        panic!("seed {seed}: generated program fails to compile: {e}\n--- source ---\n{source}")
    });
    optimize_module(&mut module, &OptOptions::full());

    // One prepared workspace both executions start from.
    let elem = 4usize;
    let mut ws = Workspace::new((2 * elem * N + (1 << 12)).max(1 << 14));
    let x = ws.alloc((elem * N) as u64);
    let y = ws.alloc((elem * N) as u64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda7a);
    if float {
        let data: Vec<f32> = (0..N).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
        ws.write_f32s(x, &data);
    } else {
        let data: Vec<i32> = (0..N).map(|_| rng.gen_range(-100i32..100)).collect();
        ws.write_i32s(x, &data);
    }
    let args = [
        MachineValue::Int(N as i64),
        MachineValue::Int(x as i64),
        MachineValue::Int(y as i64),
    ];

    // Reference: the bytecode interpreter.
    let mut mem = Memory::new(ws.bytes().len());
    mem.bytes_mut().copy_from_slice(ws.bytes());
    let interp_args: Vec<Value> = args
        .iter()
        .map(|a| match a {
            MachineValue::Int(v) => Value::Int(*v),
            MachineValue::Float(v) => Value::Float(*v),
        })
        .collect();
    let mut interp = Interpreter::new(&module);
    let expected_result = interp
        .run(name, &interp_args, &mut mem)
        .unwrap_or_else(|e| {
            panic!("seed {seed}: interpreter failed: {e}\n--- source ---\n{source}")
        })
        .map(|v| match v {
            Value::Int(i) => MachineValue::Int(i),
            Value::Float(f) => MachineValue::Float(f),
            Value::Vector(_) => panic!("kernels do not return vectors"),
        });
    let y_range = y as usize..y as usize + elem * N;
    let expected_out = mem.bytes()[y_range.clone()].to_vec();

    // Every simulated target under every register-allocation mode, through
    // both execution paths.
    for target in TargetDesc::presets() {
        for mode in MODES {
            let jit = JitOptions {
                regalloc: mode,
                allow_simd: true,
                fuse: true,
            };
            let (program, _stats) =
                compile_module(&module, &target, &jit).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {} with {mode:?} failed to compile: {e}\n--- source ---\n{source}",
                        target.name
                    )
                });

            // Legacy block walk.
            let mut legacy_ws = ws.clone();
            let mut legacy_sim = Simulator::new(&program, &target);
            let legacy_result = legacy_sim
                .run_legacy(name, &args, legacy_ws.bytes_mut())
                .unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {} with {mode:?} (legacy) failed: {e}\n--- source ---\n{source}",
                        target.name
                    )
                });

            // Pre-decoded threaded loop, with macro-op fusion.
            let prepared = PreparedProgram::prepare(&program, &target).unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: {} with {mode:?} failed to prepare: {e}\n--- source ---\n{source}",
                    target.name
                )
            });
            let mut run_ws = ws.clone();
            let mut sim = PreparedSimulator::new(&prepared);
            let result = sim
                .run(name, &args, run_ws.bytes_mut())
                .unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {} with {mode:?} (prepared) failed: {e}\n--- source ---\n{source}",
                        target.name
                    )
                });

            // The same threaded loop with fusion disabled — fusion must be
            // observationally invisible.
            let unfused =
                PreparedProgram::prepare_with(&program, &target, false).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {} with {mode:?} failed to prepare unfused: {e}\n--- source ---\n{source}",
                        target.name
                    )
                });
            let mut unfused_ws = ws.clone();
            let mut unfused_sim = PreparedSimulator::new(&unfused);
            let unfused_result = unfused_sim
                .run(name, &args, unfused_ws.bytes_mut())
                .unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {} with {mode:?} (unfused) failed: {e}\n--- source ---\n{source}",
                        target.name
                    )
                });

            for (path, run_result, out_ws) in [
                ("legacy", legacy_result, &legacy_ws),
                ("prepared", result, &run_ws),
                ("unfused", unfused_result, &unfused_ws),
            ] {
                assert_eq!(
                    run_result, expected_result,
                    "seed {seed}: {} with {mode:?} ({path}) returned a different value\n--- source ---\n{source}",
                    target.name
                );
                assert_eq!(
                    out_ws.bytes()[y_range.clone()],
                    expected_out[..],
                    "seed {seed}: {} with {mode:?} ({path}) produced different output bytes\n--- source ---\n{source}",
                    target.name
                );
            }
            assert_eq!(
                sim.stats(),
                legacy_sim.stats(),
                "seed {seed}: {} with {mode:?}: prepared SimStats diverged from the legacy walk\n--- source ---\n{source}",
                target.name
            );
            assert_eq!(
                unfused_sim.stats(),
                legacy_sim.stats(),
                "seed {seed}: {} with {mode:?}: unfused SimStats diverged from the legacy walk\n--- source ---\n{source}",
                target.name
            );

            // Pipelined timing tier: architectural behaviour (returned value,
            // the whole memory image, spill traffic) must be bit-identical to
            // the flat reference; only the timing-class accounting may move.
            let pipe_target = target.clone().with_timing(TimingKind::InOrder);
            let pipelined =
                PreparedProgram::prepare(&program, &pipe_target).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {} with {mode:?} failed to prepare pipelined: {e}\n--- source ---\n{source}",
                        target.name
                    )
                });
            let mut pipe_ws = ws.clone();
            let mut pipe_sim = PreparedSimulator::new(&pipelined);
            let pipe_result = pipe_sim
                .run(name, &args, pipe_ws.bytes_mut())
                .unwrap_or_else(|e| {
                    panic!(
                        "seed {seed}: {} with {mode:?} (pipelined) failed: {e}\n--- source ---\n{source}",
                        target.name
                    )
                });
            assert_eq!(
                pipe_result, expected_result,
                "seed {seed}: {} with {mode:?} (pipelined) returned a different value\n--- source ---\n{source}",
                target.name
            );
            assert_eq!(
                pipe_ws.bytes(),
                legacy_ws.bytes(),
                "seed {seed}: {} with {mode:?} (pipelined) memory image diverged\n--- source ---\n{source}",
                target.name
            );
            let flat = legacy_sim.stats();
            let pipe = pipe_sim.stats();
            assert_eq!(
                (pipe.instructions, pipe.loads, pipe.stores, pipe.branches, pipe.vector_ops),
                (flat.instructions, flat.loads, flat.stores, flat.branches, flat.vector_ops),
                "seed {seed}: {} with {mode:?}: architectural counters moved across timing tiers\n--- source ---\n{source}",
                target.name
            );
            assert_eq!(
                (pipe.spill_stores, pipe.spill_reloads),
                (flat.spill_stores, flat.spill_reloads),
                "seed {seed}: {} with {mode:?}: spill counts moved across timing tiers\n--- source ---\n{source}",
                target.name
            );
            assert_eq!(
                (flat.stalls, flat.mispredicts, flat.predicted),
                (0, 0, 0),
                "seed {seed}: {} with {mode:?}: flat timing must keep timing-class counters at zero",
                target.name
            );
            assert!(
                pipe.cycles >= pipe.instructions,
                "seed {seed}: {} with {mode:?}: pipelined cycles {} < retired {}",
                target.name,
                pipe.cycles,
                pipe.instructions
            );
            assert!(
                pipe.mispredicts <= pipe.branches,
                "seed {seed}: {} with {mode:?}: mispredicts {} > branches {}",
                target.name,
                pipe.mispredicts,
                pipe.branches
            );
            assert_eq!(
                pipe.predicted + pipe.mispredicts,
                pipe.branches,
                "seed {seed}: {} with {mode:?}: every branch must be predicted exactly once",
                target.name
            );
        }
    }
}

#[test]
fn random_int_programs_agree_everywhere() {
    for seed in 0..40u64 {
        let source = gen_int_program(seed);
        check_program(&source, "fuzz", seed, false);
    }
}

#[test]
fn branch_dense_programs_agree_everywhere() {
    for seed in 3000..3030u64 {
        let source = gen_branch_program(seed);
        check_program(&source, "fuzz", seed, false);
    }
}

#[test]
fn branch_dense_programs_actually_trigger_fusion() {
    // Guard against the generator drifting into shapes the fusion pass never
    // matches: across the tested seed range, compare+branch fusions must fire
    // on every register-allocation mode of a mainstream target, and the
    // indvar-step pattern must appear somewhere.
    let target = TargetDesc::x86_sse();
    let mut cmp_branch = 0u64;
    let mut indvar = 0u64;
    for seed in 3000..3030u64 {
        let mut module = compile_source(&gen_branch_program(seed), "fuzz").unwrap();
        optimize_module(&mut module, &OptOptions::full());
        for mode in MODES {
            let jit = JitOptions {
                regalloc: mode,
                allow_simd: true,
                fuse: true,
            };
            let (program, _) = compile_module(&module, &target, &jit).unwrap();
            let prepared = PreparedProgram::prepare(&program, &target).unwrap();
            let stats = prepared.fusion_stats();
            assert!(
                stats.cmp_branch > 0,
                "seed {seed}: no cmp+branch fusion fired under {mode:?}"
            );
            cmp_branch += stats.cmp_branch;
            indvar += stats.indvar;
        }
    }
    assert!(indvar > 0, "no indvar-step fusion fired across any seed");
    assert!(cmp_branch >= 90, "fusion coverage collapsed: {cmp_branch}");
}

#[test]
fn random_shift_programs_agree_everywhere() {
    for seed in 2000..2030u64 {
        let source = gen_shift_program(seed);
        check_program(&source, "fuzz", seed, false);
    }
}

#[test]
fn every_extreme_shift_count_agrees_on_every_path() {
    // A deterministic sweep: each count in SHIFT_COUNTS applied as shl and
    // shr (constant count — reachable by the offline folder — and runtime
    // count, which only the execution paths see) to positive and negative
    // operands. One small program per count so even the register-starved
    // x86 preset (6 integer registers) compiles it in every regalloc mode.
    for (ci, c) in SHIFT_COUNTS.into_iter().enumerate() {
        let c = count_lit(c);
        // Reloading `x[i]` per shift keeps every operand's last use at the
        // instruction that consumes it, so even x86's two scratch registers
        // never see two surviving spilled operands pinned at once.
        let source = format!(
            "fn fuzz(n: i32, x: *i32, y: *i32) -> i32 {{
    for (let i: i32 = 0; i < n; i = i + 1) {{
        let r: i32 = ({c} + (i - i));
        let a: i32 = ((x[i] << {c}) ^ (x[i] >> {c}));
        let b: i32 = ((x[i] << r) ^ (x[i] >> r));
        y[i] = (a + b);
    }}
    let acc: i32 = 0;
    for (let k: i32 = 0; k < n; k = k + 1) {{ acc = ((acc * 31) + y[k]); }}
    return acc;
}}\n"
        );
        check_program(&source, "fuzz", 0x5817 + ci as u64, false);
    }
}

/// Serving mode: run `source` through the async serving layer — generated
/// programs become [`ServeModule`] deployments, every (target, regalloc
/// mode) pair becomes a queued [`Request`] racing the others across the
/// worker pool — and compare each response bit-for-bit (returned value,
/// whole memory image, full `SimStats`) against a fresh single-threaded
/// `run_on_target` reference. This pins that the queue/worker/shared-engine
/// path adds **no semantic divergence** on shapes nobody hand-picked.
/// Panics with the program source on any mismatch.
fn check_program_served(server: &Server, source: &str, name: &str, seed: u64, float: bool) {
    let mut module = compile_source(source, "fuzz").unwrap_or_else(|e| {
        panic!("seed {seed}: generated program fails to compile: {e}\n--- source ---\n{source}")
    });
    optimize_module(&mut module, &OptOptions::full());
    let module = ServeModule::new(module);

    // One prepared workspace every execution starts from.
    let elem = 4usize;
    let mut ws = Workspace::new((2 * elem * N + (1 << 12)).max(1 << 14));
    let x = ws.alloc((elem * N) as u64);
    let y = ws.alloc((elem * N) as u64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xda7a);
    if float {
        let data: Vec<f32> = (0..N).map(|_| rng.gen_range(-8.0f32..8.0)).collect();
        ws.write_f32s(x, &data);
    } else {
        let data: Vec<i32> = (0..N).map(|_| rng.gen_range(-100i32..100)).collect();
        ws.write_i32s(x, &data);
    }
    let args = [
        MachineValue::Int(N as i64),
        MachineValue::Int(x as i64),
        MachineValue::Int(y as i64),
    ];

    // Submit the whole target × mode matrix before waiting on anything, so
    // requests for this program genuinely race across the worker pool.
    let mut handles = Vec::new();
    for target in TargetDesc::presets() {
        for mode in MODES {
            let jit = JitOptions {
                regalloc: mode,
                allow_simd: true,
                fuse: true,
            };
            let handle = server
                .submit(Request {
                    module: module.clone(),
                    kernel: name.to_owned(),
                    target: target.clone(),
                    options: jit,
                    args: args.to_vec(),
                    mem: ws.bytes().to_vec(),
                    deadline: None,
                    tag: 0,
                })
                .expect("fuzz server is accepting");
            handles.push((target.clone(), mode, jit, handle));
        }
    }

    for (target, mode, jit, handle) in handles {
        // Fresh single-threaded reference, no cache involved.
        let mut direct_mem = ws.bytes().to_vec();
        let direct = run_on_target(module.module(), &target, &jit, name, &args, &mut direct_mem)
            .unwrap_or_else(|e| {
                panic!(
                    "seed {seed}: {} with {mode:?} (direct) failed: {e}\n--- source ---\n{source}",
                    target.name
                )
            });
        let response = handle.wait().unwrap_or_else(|_| {
            panic!(
                "seed {seed}: {} with {mode:?}: the serving worker died\n--- source ---\n{source}",
                target.name
            )
        });
        let served = response.outcome.unwrap_or_else(|e| {
            panic!(
                "seed {seed}: {} with {mode:?} (served) failed: {e}\n--- source ---\n{source}",
                target.name
            )
        });
        assert_eq!(
            served, direct,
            "seed {seed}: {} with {mode:?}: the served measurement diverged from direct execution\n--- source ---\n{source}",
            target.name
        );
        assert_eq!(
            response.mem, direct_mem,
            "seed {seed}: {} with {mode:?}: the served memory image diverged from direct execution\n--- source ---\n{source}",
            target.name
        );
    }
}

#[test]
fn random_programs_served_through_the_queue_match_direct_execution() {
    // Every program family of this harness, pushed through one shared
    // server: the queue/worker path must be semantically invisible.
    let server = Server::start(
        ServerConfig::default()
            .with_workers(4)
            .with_queue_capacity(32),
    );
    for seed in 0..6u64 {
        check_program_served(&server, &gen_int_program(seed), "fuzz", seed, false);
    }
    for seed in 2000..2003u64 {
        check_program_served(&server, &gen_shift_program(seed), "fuzz", seed, false);
    }
    for seed in 1000..1003u64 {
        check_program_served(&server, &gen_float_program(seed), "fuzzf", seed, true);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, stats.accepted, "no fuzz request was lost");
    assert_eq!(
        stats.engines, 12,
        "every generated program is its own deployment"
    );
}

#[test]
fn random_float_programs_agree_everywhere() {
    for seed in 1000..1020u64 {
        let source = gen_float_program(seed);
        check_program(&source, "fuzzf", seed, true);
    }
}

#[test]
fn f32_constants_round_to_single_precision_on_every_path() {
    // Regression pinned from fuzzer seed 1003: `1.4804` is not exactly
    // f32-representable. The bytecode used to carry the unrounded f64, which
    // scalar paths consumed as-is while SIMD lane splats rounded it — the
    // same program diverged by one ULP between the interpreter and the
    // vectorized x86 run. Constants are now rounded at build time (and
    // defensively at interpretation/lowering time).
    let source = "fn fuzzf(n: i32, x: *f32, y: *f32) {
        let c0: f32 = 1.4804;
        for (let i: i32 = 0; i < n; i = i + 1) {
            let v: f32 = x[i];
            y[i] = (((v - v) - (v * c0)) - c0);
        }
    }";
    check_program(source, "fuzzf", 1003, true);
}

#[test]
fn generated_programs_are_deterministic_per_seed() {
    assert_eq!(gen_int_program(7), gen_int_program(7));
    assert_eq!(gen_float_program(7), gen_float_program(7));
    assert_eq!(gen_shift_program(7), gen_shift_program(7));
    assert_eq!(gen_branch_program(7), gen_branch_program(7));
    assert_ne!(gen_int_program(7), gen_int_program(8));
    assert_ne!(gen_shift_program(7), gen_shift_program(8));
    assert_ne!(gen_branch_program(7), gen_branch_program(8));
}

#[test]
fn the_shift_generator_actually_reaches_extreme_counts() {
    // Guard against the generator silently collapsing to tame shifts: across
    // the tested seed range, out-of-range constants, negative constants and
    // runtime (register) counts must all appear.
    let sources: Vec<String> = (2000..2030).map(gen_shift_program).collect();
    let any = |needle: &str| sources.iter().any(|s| s.contains(needle));
    assert!(any("<<"), "left shifts appear");
    assert!(any(">>"), "right shifts appear");
    assert!(
        any("64)") || any("65)") || any("127)"),
        "counts past the register width appear"
    );
    assert!(any("(0 - "), "negative counts appear");
    assert!(
        any("<< v") || any(">> v") || any("<< (v") || any(">> (v"),
        "runtime counts appear"
    );
}

#[test]
fn the_generator_actually_produces_variety() {
    // Not a semantics check — a guard that the fuzzer keeps covering loops,
    // conditionals and while statements rather than collapsing to one shape.
    let sources: Vec<String> = (0..40).map(gen_int_program).collect();
    assert!(sources.iter().any(|s| s.contains("if (")));
    assert!(sources.iter().any(|s| s.contains("while (t > 0)")));
    assert!(sources.iter().any(|s| s.contains("n - 1 - i")));
    let distinct: std::collections::HashSet<&String> = sources.iter().collect();
    assert_eq!(
        distinct.len(),
        sources.len(),
        "every seed yields a new program"
    );
}
