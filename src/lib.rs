//! Umbrella package for the `splitc` reproduction workspace.
//!
//! The real functionality lives in the `splitc*` crates under `crates/`.
//! This package only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! Start with [`splitc`] for the high-level pipeline API.

pub use splitc;
