//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of the `rand` 0.8 API the splitc workspace uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`] — backed by xoshiro256++ seeded through splitmix64.
//! The value stream differs from upstream `rand`; every consumer in this
//! workspace relies only on seeded determinism, never on specific values.

use std::ops::Range;

/// RNGs constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generation of uniformly distributed values (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleRange: Copy + PartialOrd {
    /// Draw one value in `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// The core random-number-generator interface.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        T::sample_range(self, range)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let width = (range.end as i128 - range.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % width) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let v = range.start + unit_f64(rng) * (range.end - range.start);
        if v >= range.end {
            range.end.next_down()
        } else {
            v.max(range.start)
        }
    }
}

impl SampleRange for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let v = range.start + unit_f64(rng) as f32 * (range.end - range.start);
        if v >= range.end {
            range.end.next_down()
        } else {
            v.max(range.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_dependent() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&i));
        }
    }

    #[test]
    fn gen_covers_integer_widths() {
        let mut rng = StdRng::seed_from_u64(11);
        let _: u8 = rng.gen();
        let _: u16 = rng.gen();
        let _: i16 = rng.gen();
        let _: bool = rng.gen();
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_ranges_are_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5i32..5);
    }
}
