//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the slice of the criterion 0.5 API the splitc benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is run
//! `sample_size` times with a wall clock and a mean/min/max summary is
//! printed — no statistics, plotting or baseline comparison.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 20,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 20, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finish the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample, preventing the result from being
    /// optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "{id:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        bencher.samples.len()
    );
}

/// Collect benchmark functions into a runnable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut calls = 0usize;
        group.sample_size(5);
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
