//! Offline stand-in for `serde`'s derive macros.
//!
//! The splitc workspace builds without network access, so the real `serde`
//! crate is unavailable. The codebase only uses `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` as forward-looking markers — the deployment wire
//! format is hand-rolled in `splitc_vbc::encode` — so the derives expand to
//! nothing here. See `vendor/README.md` for how to swap in the real crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
